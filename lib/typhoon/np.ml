type work =
  | Message of Tt_net.Message.t
  | Block_fault of Tempest.fault
  | Page_fault of {
      vaddr : int;
      access : Tt_mem.Tag.access;
      resumption : Tempest.resumption;
    }
  | Deferred of (unit -> unit)

let nop () = ()

(* Work queues are circular rings over parallel (time, item) arrays with
   power-of-two capacity, so posting and draining allocate nothing: message
   rings hold [Message.t] directly and the deferred ring holds the bare
   closure, with no [work] variant box per item on the hot paths. *)
type 'a ring = {
  mutable r_times : int array;
  mutable r_items : 'a array;
  mutable head : int;
  mutable count : int;
  r_dummy : 'a;
}

let ring_make dummy =
  { r_times = [||]; r_items = [||]; head = 0; count = 0; r_dummy = dummy }

let ring_grow r =
  let cap = Array.length r.r_items in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let items = Array.make ncap r.r_dummy and times = Array.make ncap 0 in
  for i = 0 to r.count - 1 do
    let j = (r.head + i) land (cap - 1) in
    items.(i) <- r.r_items.(j);
    times.(i) <- r.r_times.(j)
  done;
  r.r_items <- items;
  r.r_times <- times;
  r.head <- 0

let ring_push r at x =
  if r.count = Array.length r.r_items then ring_grow r;
  let i = (r.head + r.count) land (Array.length r.r_items - 1) in
  r.r_times.(i) <- at;
  r.r_items.(i) <- x;
  r.count <- r.count + 1

let ring_pop r =
  let x = r.r_items.(r.head) in
  r.r_items.(r.head) <- r.r_dummy;
  r.head <- (r.head + 1) land (Array.length r.r_items - 1);
  r.count <- r.count - 1;
  x

(* head-of-ring ready time; only meaningful when [count > 0] *)
let ring_time r = r.r_times.(r.head)

type t = {
  engine : Tt_sim.Engine.t;
  np_rtlb : Tt_mem.Tlb.t;
  np_dcache : Tt_cache.Cache.t;
  capacity : int; (* per-ring item cap; [max_int] = unbounded *)
  np_name : string;
  mutable exec : work -> unit;
  mutable msg_exec : Tt_net.Message.t -> unit;
  mutable deferred_exec : (unit -> unit) -> unit;
  mutable self : unit -> unit; (* preallocated dispatch closure *)
  mutable np_clock : int;
  mutable np_busy : bool;
  (* ready times are monotone within a ring, so checking the head suffices *)
  responses : Tt_net.Message.t ring;
  requests : Tt_net.Message.t ring;
  faults : work ring;
  deferred : (unit -> unit) ring;
  mutable handled_count : int;
  mutable busy_cycle_count : int;
}

let clock t = t.np_clock

let charge t n = t.np_clock <- t.np_clock + n

let rtlb t = t.np_rtlb

let dcache t = t.np_dcache

let busy t = t.np_busy

let handled t = t.handled_count

let busy_cycles t = t.busy_cycle_count

let depth t =
  t.responses.count + t.requests.count + t.faults.count + t.deferred.count

(* Finite queueing: each ring rejects pushes beyond [capacity].  With the
   Flow credit layer above, an ample capacity is a pure safety net — credits
   bound arrivals long before the ring fills — so hitting this is a bug or a
   deliberately tiny-capacity overload experiment, and either way it must
   abort loudly, never grow silently. *)
let check_room t r what at =
  if r.count >= t.capacity then
    raise
      (Tt_net.Overload.Overload
         (Printf.sprintf
            "%s: %s ring full (%d items, capacity %d) at t=%d (queues: \
             responses=%d requests=%d faults=%d deferred=%d)"
            t.np_name what r.count t.capacity at t.responses.count
            t.requests.count t.faults.count t.deferred.count))

(* Priority: responses, then faults, then requests, then deferred chores
   (§5.1: the response network must never starve).

   After each item, if no engine event is queued at or before the NP clock
   we may keep draining inline: [Engine.skip_to] advances simulated time to
   exactly where the one-event-per-item schedule would have put it, so the
   observable event order — and every cycle count — is bit-identical to
   rescheduling, minus the queue traffic. *)
let rec dispatch t () =
  let start = t.np_clock in
  if t.responses.count > 0 && ring_time t.responses <= t.np_clock then begin
    t.msg_exec (ring_pop t.responses);
    finish t start
  end
  else if t.faults.count > 0 && ring_time t.faults <= t.np_clock then begin
    t.exec (ring_pop t.faults);
    finish t start
  end
  else if t.requests.count > 0 && ring_time t.requests <= t.np_clock then begin
    t.msg_exec (ring_pop t.requests);
    finish t start
  end
  else if t.deferred.count > 0 && ring_time t.deferred <= t.np_clock then begin
    t.deferred_exec (ring_pop t.deferred);
    finish t start
  end
  else begin
    (* nothing ready at the current clock: idle until the earliest queued
       ready time, or go idle entirely *)
    let earliest = ref max_int in
    if t.responses.count > 0 then earliest := min !earliest (ring_time t.responses);
    if t.faults.count > 0 then earliest := min !earliest (ring_time t.faults);
    if t.requests.count > 0 then earliest := min !earliest (ring_time t.requests);
    if t.deferred.count > 0 then earliest := min !earliest (ring_time t.deferred);
    if !earliest = max_int then t.np_busy <- false
    else begin
      t.np_clock <- max t.np_clock !earliest;
      Tt_sim.Engine.at t.engine t.np_clock t.self
    end
  end

and finish t start =
  t.handled_count <- t.handled_count + 1;
  t.busy_cycle_count <- t.busy_cycle_count + (t.np_clock - start);
  (* Re-enter the loop at the NP's advanced clock so other simulation
     events interleave at the right times.  Strict inequality: an engine
     event already queued at np_clock would have fired before a freshly
     scheduled dispatch (smaller tie-break seq), so we must yield to it. *)
  if Tt_sim.Engine.next_event_time t.engine > t.np_clock then begin
    Tt_sim.Engine.skip_to t.engine t.np_clock;
    dispatch t ()
  end
  else Tt_sim.Engine.at t.engine t.np_clock t.self

let create engine ~rtlb ~dcache ?(capacity = max_int) ?(name = "np") () =
  if capacity <= 0 then invalid_arg "Np.create: bad capacity";
  let t =
    { engine; np_rtlb = rtlb; np_dcache = dcache; capacity; np_name = name;
      exec = (fun _ -> invalid_arg "Np: exec not installed");
      msg_exec = (fun _ -> ());
      deferred_exec = (fun _ -> ());
      self = nop;
      np_clock = 0; np_busy = false;
      responses = ring_make Tt_net.Message.dummy;
      requests = ring_make Tt_net.Message.dummy;
      faults = ring_make (Deferred nop);
      deferred = ring_make nop;
      handled_count = 0; busy_cycle_count = 0 }
  in
  (* compat defaults route the specialized paths through [exec]; machines
     that care about allocation install direct executors instead *)
  t.msg_exec <- (fun m -> t.exec (Message m));
  t.deferred_exec <- (fun f -> t.exec (Deferred f));
  t.self <- dispatch t;
  t

let set_exec t exec = t.exec <- exec

let set_msg_exec t exec = t.msg_exec <- exec

let set_deferred_exec t exec = t.deferred_exec <- exec

let kick t =
  if not t.np_busy then begin
    t.np_busy <- true;
    t.np_clock <- max t.np_clock (Tt_sim.Engine.now t.engine);
    Tt_sim.Engine.at t.engine t.np_clock t.self
  end

let post_message t ~at (m : Tt_net.Message.t) =
  (match m.vnet with
  | Tt_net.Message.Response ->
      check_room t t.responses "response" at;
      ring_push t.responses at m
  | Tt_net.Message.Request ->
      check_room t t.requests "request" at;
      ring_push t.requests at m);
  kick t

let post_deferred t ~at f =
  check_room t t.deferred "deferred" at;
  ring_push t.deferred at f;
  kick t

let post t ~at work =
  (match work with
  | Message m -> (
      match m.Tt_net.Message.vnet with
      | Tt_net.Message.Response ->
          check_room t t.responses "response" at;
          ring_push t.responses at m
      | Tt_net.Message.Request ->
          check_room t t.requests "request" at;
          ring_push t.requests at m)
  | Block_fault _ | Page_fault _ ->
      check_room t t.faults "fault" at;
      ring_push t.faults at work
  | Deferred f ->
      check_room t t.deferred "deferred" at;
      ring_push t.deferred at f);
  kick t
