(** The Typhoon machine (§5): workstation-like nodes, each with a CPU
    (cache + TLB), local memory with block tags, and a network-interface
    processor, connected by a two-virtual-network fabric.

    This module implements the Tempest interface on the simulated hardware:
    {!endpoint} returns a node's {!Tempest.t} whose operations charge
    simulated cost to whoever executes them (NP handlers, or the CPU thread
    inside {!with_cpu_context}).

    The CPU access path ({!cpu_read_f64} and friends) implements Table 1's
    tag-checked [read]/[write]: TLB lookup, cache lookup, and on a bus
    transaction the NP's snoop; accesses the tags deny become block-access
    faults that suspend the calling thread until a user-level handler
    resumes it. *)

type t

val create :
  ?reliability:Tt_net.Reliable.policy -> Tt_sim.Engine.t -> Params.t -> t
(** Builds [params.nodes] nodes and wires the fabric.  User protocol code
    must then register its handlers via {!handlers} before any CPU thread
    touches protocol-managed pages. *)

val engine : t -> Tt_sim.Engine.t

val params : t -> Params.t

val nnodes : t -> int

val handlers : t -> Tempest.Handlers.tables

val fabric : t -> Tt_net.Fabric.t

val net : t -> Tt_net.Reliable.t

val endpoint : t -> int -> Tempest.t

val node_mem : t -> int -> Tt_mem.Pagemem.t

val node_np : t -> int -> Np.t

val cpu_cache : t -> int -> Tt_cache.Cache.t

val cpu_tlb : t -> int -> Tt_mem.Tlb.t

val node_stats : t -> int -> Tt_util.Stats.t
(** Counters: [block_faults], [page_faults], [upgrades], [local_misses],
    [accesses]. *)

val set_on_dirty :
  t -> (node:int -> vpage:int -> forced:bool -> unit) option -> unit
(** Install a write observer for checkpoint dirty tracking: fired on every
    successful CPU store ([forced:false], the writing node's own copy) and
    every NP forced write ([forced:true] — writebacks, data installs,
    custom-protocol updates; the observer can filter on the written page's
    mode).  Pure bookkeeping: charges no simulated cycles, so installing it
    never changes any run's timing. *)

val merged_stats : t -> Tt_util.Stats.t
(** All node counters plus network traffic (and, when flow control is on,
    the [flow.*] counters), merged. *)

(** {2 Finite buffering (§5.1)} *)

val flow : t -> Tt_net.Flow.t option
(** The credit-based flow-control layer, or [None] when disabled by the
    [TT_FLOW] kill switch (see {!Tt_net.Flow}). *)

val delivered : t -> int
(** Total NP work items executed machine-wide — the progress metric the
    {!Tt_harness.Watchdog} no-progress budget watches: a stationary value
    across a window means the machine is wedged. *)

val queue_summary : t -> string
(** One-line occupancy summary (NP ring depths, parked flow-control
    traffic) for watchdog diagnostics. *)

val deadlock_probe : t -> string option
(** {!Tt_net.Flow.deadlock} on the flow layer; [None] when flow control is
    off or no waits-for cycle exists. *)

(** {2 CPU-side execution} *)

val with_cpu_context : t -> node:int -> Tt_sim.Thread.t -> (unit -> 'a) -> 'a
(** Run CPU-resident protocol/library code (allocation, setup): endpoint
    operations performed inside [f] charge the thread instead of the NP.
    [f] must not suspend — with one exception: a send as the {e last}
    operation may block on flow-control credits (the context would be
    restored wrong across an effect suspension mid-body, but nothing reads
    it after a tail send). *)

val cpu_access :
  t -> node:int -> Tt_sim.Thread.t -> Tt_mem.Tag.access -> int -> unit
(** Perform one tag-checked access to [vaddr]; blocks through faults until
    it completes.  Exposed for tests; applications use the typed wrappers. *)

val cpu_read_f64 : t -> node:int -> Tt_sim.Thread.t -> int -> float

val cpu_write_f64 : t -> node:int -> Tt_sim.Thread.t -> int -> float -> unit

val cpu_read_int : t -> node:int -> Tt_sim.Thread.t -> int -> int

val cpu_write_int : t -> node:int -> Tt_sim.Thread.t -> int -> int -> unit
