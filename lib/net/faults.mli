(** Deterministic fault injection for the interconnect.

    Wraps {!Fabric.send} with a seeded, reproducible fault model: messages
    may be dropped, duplicated, or delayed past later traffic
    (reorder/jitter), with independent probabilities per virtual network.
    Decisions come from a private splitmix PRNG ({!Tt_util.Prng}), so the
    same seed and config produce a bit-identical fault pattern — and, the
    simulation being deterministic, bit-identical runs.

    Typhoon itself assumes a reliable non-corrupting network (§5.1); this
    layer exists to exercise the user-level {!Reliable} transport and the
    coherence/progress oracles above it.

    {2 PRNG draw order (pinned)}

    Per {!send}, draws happen in exactly this order, each draw conditional
    on the preceding ones:
    + drop chance (only if the vnet's drop rate is positive);
    + a {e dropped} message draws nothing further — its fault pattern costs
      exactly one draw;
    + reorder chance (only if the reorder rate is positive);
    + reorder jitter, [1 + uniform max_jitter], iff the reorder chance hit;
    + dup chance (only if the dup rate is positive);
    + dup jitter, [1 + uniform max_jitter], iff the dup chance hit.

    A message that is both reordered and duplicated therefore draws {e two}
    jitters from the same stream, reorder's first; the duplicate's delay is
    independent of (and may be smaller than) the original's.  This order is
    part of the module's seed-stability contract: changing it silently
    rewrites every recorded fault pattern, so it is pinned by a regression
    test (the exact dropped/duplicated/reordered counter triple for a known
    traffic sequence).

    Bursty-loss mode ({!bursty}) does not touch this contract: each
    (src,dst) link's Gilbert–Elliott state transition draws from a {e
    private} per-link stream, never from the main stream, and the rules
    above then apply to the state's {e effective} rates (the configured
    rates scaled by [good_scale]/[bad_scale], clamped to 1).  With both
    scales at 1.0 the main stream is consumed draw-for-draw identically to
    burst mode off. *)

type rates = { drop : float; dup : float; reorder : float }
(** Independent per-message probabilities in [0, 1]. *)

val no_faults : rates

type burst = {
  p_enter : float;  (** good→bad transition probability, per send on a link *)
  p_exit : float;   (** bad→good transition probability *)
  good_scale : float;  (** fault-rate multiplier in the good state *)
  bad_scale : float;   (** fault-rate multiplier in the bad state *)
}
(** Seeded Gilbert–Elliott bursty loss: each (src,dst) link is a two-state
    Markov chain advanced once per send over that link, and the state
    scales the vnet's configured rates (clamped to probability 1).  The
    default good state is clean ([good_scale = 0]); the bad state
    concentrates the configured rates into bursts ([bad_scale = 10]). *)

val bursty :
  ?p_enter:float -> ?p_exit:float -> ?good_scale:float -> ?bad_scale:float ->
  unit -> burst
(** Defaults: p_enter 0.05, p_exit 0.25 (mean burst length 4 sends),
    good_scale 0, bad_scale 10.  @raise Invalid_argument on probabilities
    outside [0,1] or negative scales. *)

exception Unrecoverable of string
(** Raised by recovery layers (Stache/DirNNB re-homing) when a crash lost
    the only copy of modified data and no valid checkpoint covers it: the
    diagnosed, deterministic abort that the recovery harness converts into
    a rollback (re-execution) or a final [Unrecoverable] verdict — never a
    silent wrong answer.  Declared here because the crash-stop failure
    model lives in this module and every recovery layer depends on it. *)

type crash = {
  victim : int;      (** node that crash-stops *)
  at : int;          (** nominal crash cycle *)
  jitter : int;      (** max extra delay, drawn from a private per-victim
                         stream (never the main stream) *)
  rejoin : int option;  (** [Some c]: the node comes back at cycle [c];
                            [None]: crash-stop forever *)
}
(** A seeded crash-stop schedule entry: from its (possibly jittered) crash
    cycle until its rejoin cycle (or forever), the victim's fabric endpoint
    silently drops every send and receive.  The simulator state (memory,
    fibers) is untouched — detection and recovery are the user level's
    problem, exactly as the paper's philosophy demands. *)

val crash : ?jitter:int -> ?rejoin:int -> victim:int -> at:int -> unit -> crash
(** @raise Invalid_argument on a negative crash time or jitter, or a rejoin
    cycle not after the crash cycle. *)

type config = {
  seed : int;
  request : rates;   (** applied to {!Message.vnet} [Request] traffic *)
  response : rates;  (** applied to [Response] traffic *)
  max_jitter : int;  (** max extra delay (cycles) for reordered/dup copies *)
  burst : burst option;  (** [Some _] enables bursty-loss mode *)
  crashes : crash list;  (** crash-stop schedule (empty = no node dies) *)
}

val uniform :
  ?seed:int -> ?drop:float -> ?dup:float -> ?reorder:float ->
  ?max_jitter:int -> ?burst:burst -> ?crashes:crash list -> unit -> config
(** Same rates on both virtual networks (defaults: all 0, seed 0x7700,
    max_jitter 40, no burst, no crashes). *)

val per_vnet :
  ?seed:int -> ?max_jitter:int -> ?burst:burst -> ?crashes:crash list ->
  request:rates -> response:rates -> unit -> config
(** Distinct rates per virtual network — e.g. a lossy request net under a
    clean response net, the asymmetry the [tt faults]
    [--request-drop]/[--response-drop] flags expose. *)

val set_recovery : bool -> unit
(** Kill switch (also [TT_RECOVERY=0] in the environment): when off,
    {!create} ignores the config's crash schedule entirely, so every
    pinned row is bit-identical to crash support never having existed.
    Crash injection consumes no main-stream PRNG draws either way; the
    switch exists so the claim is enforceable by an A/B gate
    (scripts/check_recovery.sh) rather than argued. *)

val recovery_enabled : unit -> bool

type decision = { dropped : bool; reorder_jitter : int; dup_jitter : int }
(** The complete fault decision for one {!send}: [dropped] wins over the
    rest; [reorder_jitter]/[dup_jitter] of [0] mean no reorder / no dup
    (injected jitters are always ≥ 1). *)

val deliver : decision
(** The neutral decision: deliver untouched, no duplicate. *)

type t

val create : config -> Fabric.t -> t

val send : t -> at:int -> Message.t -> unit
(** Like {!Fabric.send}, but the message may be dropped, delivered twice, or
    delayed by up to [max_jitter] extra cycles (which lets later traffic on
    the same pair overtake it).  A send whose {e source} is inside a
    crash-stop window is dropped silently before the fault model runs — no
    PRNG draw, no tap site — counted as [faults.crash_dropped].  (A down
    {e destination} is handled at delivery time by {!Reliable}.) *)

val send_oob : t -> at:int -> Message.t -> unit
(** Out-of-band send for the liveness protocol: bypasses the fault model's
    PRNG and rates entirely (no drop/dup/reorder draws — lost heartbeats
    are modelled by the lease budget, not per-message faults) but still
    drops sends from a crashed source.  Goes straight to {!Fabric.send}. *)

val is_down : t -> node:int -> at:int -> bool
(** Whether [node] is inside a crash-stop window at cycle [at].  Pure:
    windows are resolved once at {!create} (per-victim jitter drawn from
    private streams), so this never consumes randomness. *)

val crash_window : t -> node:int -> (int * int option) option
(** The resolved window for [node]: [Some (down, rejoin)] where [rejoin]
    is [None] for a permanent crash-stop; [None] if the node never
    crashes (including when recovery is switched off). *)

val crash_drop : t -> Message.t -> unit
(** Swallow a message on behalf of a crashed endpoint: count it under
    [faults.crash_dropped] and release the wire's reference.  Used by
    {!Reliable} for deliveries whose destination is down. *)

val set_tap : t -> (site:int -> decision -> decision) option -> unit
(** Install (or remove) a decision tap.  When set, every {!send} first
    draws its natural decision from the PRNG exactly as documented above,
    then passes it to the tap along with the send's {e site} index (a
    counter of sends through this injector); whatever the tap returns is
    what is applied.  The PRNG stream is consumed identically with or
    without a tap, so recording, masking (forcing {!deliver} at chosen
    sites), and journal-driven replay of fault decisions never shift later
    draws.  Counters reflect {e applied} decisions. *)

val sites : t -> int
(** Number of sends decided so far (the next send's site index). *)

val stats : t -> Tt_util.Stats.t
(** Counters: [faults.dropped], [faults.duplicated], [faults.reordered],
    [faults.crash_dropped] (sends or deliveries swallowed by a crash-stop
    window), and in burst mode [faults.burst_bad_sends] (sends decided in
    a link's bad state). *)

val dropped : t -> int
