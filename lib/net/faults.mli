(** Deterministic fault injection for the interconnect.

    Wraps {!Fabric.send} with a seeded, reproducible fault model: messages
    may be dropped, duplicated, or delayed past later traffic
    (reorder/jitter), with independent probabilities per virtual network.
    Decisions come from a private splitmix PRNG ({!Tt_util.Prng}), so the
    same seed and config produce a bit-identical fault pattern — and, the
    simulation being deterministic, bit-identical runs.

    Typhoon itself assumes a reliable non-corrupting network (§5.1); this
    layer exists to exercise the user-level {!Reliable} transport and the
    coherence/progress oracles above it. *)

type rates = { drop : float; dup : float; reorder : float }
(** Independent per-message probabilities in [0, 1]. *)

val no_faults : rates

type config = {
  seed : int;
  request : rates;   (** applied to {!Message.vnet} [Request] traffic *)
  response : rates;  (** applied to [Response] traffic *)
  max_jitter : int;  (** max extra delay (cycles) for reordered/dup copies *)
}

val uniform :
  ?seed:int -> ?drop:float -> ?dup:float -> ?reorder:float ->
  ?max_jitter:int -> unit -> config
(** Same rates on both virtual networks (defaults: all 0, seed 0x7700,
    max_jitter 40). *)

type t

val create : config -> Fabric.t -> t

val send : t -> at:int -> Message.t -> unit
(** Like {!Fabric.send}, but the message may be dropped, delivered twice, or
    delayed by up to [max_jitter] extra cycles (which lets later traffic on
    the same pair overtake it). *)

val stats : t -> Tt_util.Stats.t
(** Counters: [faults.dropped], [faults.duplicated], [faults.reordered]. *)

val dropped : t -> int
