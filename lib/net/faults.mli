(** Deterministic fault injection for the interconnect.

    Wraps {!Fabric.send} with a seeded, reproducible fault model: messages
    may be dropped, duplicated, or delayed past later traffic
    (reorder/jitter), with independent probabilities per virtual network.
    Decisions come from a private splitmix PRNG ({!Tt_util.Prng}), so the
    same seed and config produce a bit-identical fault pattern — and, the
    simulation being deterministic, bit-identical runs.

    Typhoon itself assumes a reliable non-corrupting network (§5.1); this
    layer exists to exercise the user-level {!Reliable} transport and the
    coherence/progress oracles above it.

    {2 PRNG draw order (pinned)}

    Per {!send}, draws happen in exactly this order, each draw conditional
    on the preceding ones:
    + drop chance (only if the vnet's drop rate is positive);
    + a {e dropped} message draws nothing further — its fault pattern costs
      exactly one draw;
    + reorder chance (only if the reorder rate is positive);
    + reorder jitter, [1 + uniform max_jitter], iff the reorder chance hit;
    + dup chance (only if the dup rate is positive);
    + dup jitter, [1 + uniform max_jitter], iff the dup chance hit.

    A message that is both reordered and duplicated therefore draws {e two}
    jitters from the same stream, reorder's first; the duplicate's delay is
    independent of (and may be smaller than) the original's.  This order is
    part of the module's seed-stability contract: changing it silently
    rewrites every recorded fault pattern, so it is pinned by a regression
    test (the exact dropped/duplicated/reordered counter triple for a known
    traffic sequence). *)

type rates = { drop : float; dup : float; reorder : float }
(** Independent per-message probabilities in [0, 1]. *)

val no_faults : rates

type config = {
  seed : int;
  request : rates;   (** applied to {!Message.vnet} [Request] traffic *)
  response : rates;  (** applied to [Response] traffic *)
  max_jitter : int;  (** max extra delay (cycles) for reordered/dup copies *)
}

val uniform :
  ?seed:int -> ?drop:float -> ?dup:float -> ?reorder:float ->
  ?max_jitter:int -> unit -> config
(** Same rates on both virtual networks (defaults: all 0, seed 0x7700,
    max_jitter 40). *)

val per_vnet :
  ?seed:int -> ?max_jitter:int -> request:rates -> response:rates -> unit ->
  config
(** Distinct rates per virtual network — e.g. a lossy request net under a
    clean response net, the asymmetry the [tt faults]
    [--request-drop]/[--response-drop] flags expose. *)

type decision = { dropped : bool; reorder_jitter : int; dup_jitter : int }
(** The complete fault decision for one {!send}: [dropped] wins over the
    rest; [reorder_jitter]/[dup_jitter] of [0] mean no reorder / no dup
    (injected jitters are always ≥ 1). *)

val deliver : decision
(** The neutral decision: deliver untouched, no duplicate. *)

type t

val create : config -> Fabric.t -> t

val send : t -> at:int -> Message.t -> unit
(** Like {!Fabric.send}, but the message may be dropped, delivered twice, or
    delayed by up to [max_jitter] extra cycles (which lets later traffic on
    the same pair overtake it). *)

val set_tap : t -> (site:int -> decision -> decision) option -> unit
(** Install (or remove) a decision tap.  When set, every {!send} first
    draws its natural decision from the PRNG exactly as documented above,
    then passes it to the tap along with the send's {e site} index (a
    counter of sends through this injector); whatever the tap returns is
    what is applied.  The PRNG stream is consumed identically with or
    without a tap, so recording, masking (forcing {!deliver} at chosen
    sites), and journal-driven replay of fault decisions never shift later
    draws.  Counters reflect {e applied} decisions. *)

val sites : t -> int
(** Number of sends decided so far (the next send's site index). *)

val stats : t -> Tt_util.Stats.t
(** Counters: [faults.dropped], [faults.duplicated], [faults.reordered]. *)

val dropped : t -> int
