(** Finite-buffering overflow signal.

    Raised when a bounded queue — the fabric's in-flight buffer, an NP work
    ring, or the user-level spill buffer ({!Flow}) — would be pushed past
    its capacity.  The message names the saturated component, its occupancy
    and capacity, and (for the flow layer) the blocked senders, so an
    overloaded run aborts with a diagnostic instead of buffering without
    bound or hanging silently.

    Lives in its own module at the bottom of the [tt_net] dependency graph
    so {!Fabric}, {!Flow}, and [Tt_typhoon.Np] can all raise it. *)

exception Overload of string
