module Stats = Tt_util.Stats
module Prng = Tt_util.Prng

type rates = { drop : float; dup : float; reorder : float }

let no_faults = { drop = 0.0; dup = 0.0; reorder = 0.0 }

type config = {
  seed : int;
  request : rates;
  response : rates;
  max_jitter : int;
}

let uniform ?(seed = 0x7700) ?(drop = 0.0) ?(dup = 0.0) ?(reorder = 0.0)
    ?(max_jitter = 40) () =
  let r = { drop; dup; reorder } in
  { seed; request = r; response = r; max_jitter }

type t = {
  fabric : Fabric.t;
  prng : Prng.t;
  config : config;
  counters : Stats.t;
  c_dropped : Stats.counter;
  c_duplicated : Stats.counter;
  c_reordered : Stats.counter;
}

let create config fabric =
  let counters = Stats.create "faults" in
  {
    fabric;
    prng = Prng.create ~seed:config.seed;
    config;
    counters;
    c_dropped = Stats.counter counters "faults.dropped";
    c_duplicated = Stats.counter counters "faults.duplicated";
    c_reordered = Stats.counter counters "faults.reordered";
  }

let stats t = t.counters

let dropped t = Stats.Counter.get t.c_dropped

(* The PRNG draw sequence per send is fixed (drop, then reorder, then dup
   on surviving messages), so a given seed yields a bit-reproducible fault
   pattern for a given traffic sequence — and since the simulation itself
   is deterministic, for a given (seed, config) pair entirely. *)
let send t ~at msg =
  let r =
    match msg.Message.vnet with
    | Message.Request -> t.config.request
    | Message.Response -> t.config.response
  in
  if r.drop > 0.0 && Prng.chance t.prng r.drop then begin
    Stats.Counter.incr t.c_dropped;
    (* the wire's reference dies here: a dropped message never reaches a
       receiver, so nobody downstream will release it *)
    Message.Pool.release msg
  end
  else begin
    let jitter =
      if r.reorder > 0.0 && Prng.chance t.prng r.reorder then begin
        Stats.Counter.incr t.c_reordered;
        1 + Prng.int t.prng t.config.max_jitter
      end
      else 0
    in
    Fabric.send t.fabric ~at:(at + jitter) msg;
    if r.dup > 0.0 && Prng.chance t.prng r.dup then begin
      Stats.Counter.incr t.c_duplicated;
      let jitter' = 1 + Prng.int t.prng t.config.max_jitter in
      (* the copy on the wire is a second reference; the receive path
         releases each delivered instance independently *)
      Message.Pool.retain msg;
      Fabric.send t.fabric ~at:(at + jitter') msg
    end
  end
