module Stats = Tt_util.Stats
module Prng = Tt_util.Prng

type rates = { drop : float; dup : float; reorder : float }

let no_faults = { drop = 0.0; dup = 0.0; reorder = 0.0 }

type burst = {
  p_enter : float;
  p_exit : float;
  good_scale : float;
  bad_scale : float;
}

let bursty ?(p_enter = 0.05) ?(p_exit = 0.25) ?(good_scale = 0.0)
    ?(bad_scale = 10.0) () =
  let chk what p =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Faults.bursty: %s out of [0,1]" what)
  in
  chk "p_enter" p_enter;
  chk "p_exit" p_exit;
  if good_scale < 0.0 || bad_scale < 0.0 then
    invalid_arg "Faults.bursty: negative rate scale";
  { p_enter; p_exit; good_scale; bad_scale }

exception Unrecoverable of string

type crash = { victim : int; at : int; jitter : int; rejoin : int option }

let crash ?(jitter = 0) ?rejoin ~victim ~at () =
  if at < 0 then invalid_arg "Faults.crash: negative crash time";
  if jitter < 0 then invalid_arg "Faults.crash: negative jitter";
  (match rejoin with
  | Some r when r <= at -> invalid_arg "Faults.crash: rejoin before crash"
  | _ -> ());
  { victim; at; jitter; rejoin }

type config = {
  seed : int;
  request : rates;
  response : rates;
  max_jitter : int;
  burst : burst option;
  crashes : crash list;
}

(* TT_RECOVERY=0 disables crash-stop injection entirely: [create] ignores
   the config's crash schedule, so every pinned row is bit-identical to the
   pre-crash-era code by construction (asserted by the recovery parity
   bench and scripts/check_recovery.sh). *)
let recovery_on =
  ref
    (match Sys.getenv_opt "TT_RECOVERY" with
    | Some ("0" | "false" | "off") -> false
    | Some _ | None -> true)

let set_recovery on = recovery_on := on

let recovery_enabled () = !recovery_on

let uniform ?(seed = 0x7700) ?(drop = 0.0) ?(dup = 0.0) ?(reorder = 0.0)
    ?(max_jitter = 40) ?burst ?(crashes = []) () =
  let r = { drop; dup; reorder } in
  { seed; request = r; response = r; max_jitter; burst; crashes }

let per_vnet ?(seed = 0x7700) ?(max_jitter = 40) ?burst ?(crashes = [])
    ~request ~response () =
  { seed; request; response; max_jitter; burst; crashes }

type decision = { dropped : bool; reorder_jitter : int; dup_jitter : int }

let deliver = { dropped = false; reorder_jitter = 0; dup_jitter = 0 }

type t = {
  fabric : Fabric.t;
  prng : Prng.t;
  config : config;
  counters : Stats.t;
  c_dropped : Stats.counter;
  c_duplicated : Stats.counter;
  c_reordered : Stats.counter;
  c_burst_bad : Stats.counter;
  c_crash_dropped : Stats.counter;
  (* Resolved crash-stop windows, one per node: down during
     [down_from.(n), up_from.(n)) (max_int = never).  Crash-time jitter is
     drawn from a private per-victim stream at create, never from the main
     stream, so a config with [crashes = []] consumes the main stream
     draw-for-draw identically to one predating crash support. *)
  down_from : int array;
  up_from : int array;
  (* Gilbert–Elliott link state, lazily allocated per (src,dst) link.  Each
     link owns a private PRNG stream for its state transitions so the main
     stream's pinned draw order (see .mli) is untouched by burst mode. *)
  nnodes : int;
  link_rngs : Prng.t option array;
  link_bad : bool array;
  mutable tap : (site:int -> decision -> decision) option;
  mutable site : int;
}

let create config fabric =
  let counters = Stats.create "faults" in
  let nnodes = Fabric.nodes fabric in
  let nlinks = match config.burst with None -> 0 | Some _ -> nnodes * nnodes in
  let down_from = Array.make nnodes max_int in
  let up_from = Array.make nnodes max_int in
  if recovery_enabled () then
    List.iter
      (fun c ->
        if c.victim < 0 || c.victim >= nnodes then
          invalid_arg
            (Printf.sprintf "Faults.create: crash victim %d out of [0,%d)"
               c.victim nnodes);
        let j =
          if c.jitter <= 0 then 0
          else
            let g =
              Prng.create ~seed:(config.seed lxor ((c.victim + 1) * 0x85EBCA6B))
            in
            Prng.int g (c.jitter + 1)
        in
        let down = c.at + j in
        down_from.(c.victim) <- down;
        up_from.(c.victim) <-
          (match c.rejoin with None -> max_int | Some r -> max (down + 1) r))
      config.crashes;
  {
    fabric;
    prng = Prng.create ~seed:config.seed;
    config;
    counters;
    c_dropped = Stats.counter counters "faults.dropped";
    c_duplicated = Stats.counter counters "faults.duplicated";
    c_reordered = Stats.counter counters "faults.reordered";
    c_burst_bad = Stats.counter counters "faults.burst_bad_sends";
    c_crash_dropped = Stats.counter counters "faults.crash_dropped";
    down_from;
    up_from;
    nnodes;
    link_rngs = Array.make nlinks None;
    link_bad = Array.make nlinks false;
    tap = None;
    site = 0;
  }

let stats t = t.counters

let dropped t = Stats.Counter.get t.c_dropped

let is_down t ~node ~at =
  node >= 0 && node < t.nnodes
  && at >= t.down_from.(node)
  && at < t.up_from.(node)

let crash_window t ~node =
  if node < 0 || node >= t.nnodes || t.down_from.(node) = max_int then None
  else
    Some
      ( t.down_from.(node),
        if t.up_from.(node) = max_int then None else Some t.up_from.(node) )

let crash_drop t msg =
  Stats.Counter.incr t.c_crash_dropped;
  Message.Pool.release msg

let set_tap t tap = t.tap <- tap

let sites t = t.site

(* The PRNG draw sequence per send is fixed — see the .mli contract:
   (1) drop chance; a dropped message draws nothing further; surviving
   messages draw (2) reorder chance, (3) reorder jitter iff (2) hit,
   (4) dup chance, (5) dup jitter iff (4) hit — so a given seed yields a
   bit-reproducible fault pattern for a given traffic sequence, and since
   the simulation itself is deterministic, for a given (seed, config) pair
   entirely.  The tap (if any) observes the drawn decision and may replace
   it; the PRNG stream is consumed identically either way, so masking or
   replaying decisions never shifts later draws. *)
(* One Gilbert–Elliott state transition per send, drawn from the link's
   private stream: in the bad state the vnet's configured rates are scaled
   by [bad_scale] (clamped to probability 1), in the good state by
   [good_scale].  Scales of 1.0 make burst mode draw-for-draw identical to
   no burst on the main stream, which is how the draw-order preservation is
   pinned by test. *)
let effective_rates t (msg : Message.t) r =
  match t.config.burst with
  | None -> r
  | Some b ->
      let link = (msg.Message.src * t.nnodes) + msg.Message.dst in
      let rng =
        match t.link_rngs.(link) with
        | Some g -> g
        | None ->
            let g =
              Prng.create ~seed:(t.config.seed lxor ((link + 1) * 0x9E3779B9))
            in
            t.link_rngs.(link) <- Some g;
            g
      in
      let bad =
        if t.link_bad.(link) then not (Prng.chance rng b.p_exit)
        else Prng.chance rng b.p_enter
      in
      t.link_bad.(link) <- bad;
      if bad then Stats.Counter.incr t.c_burst_bad;
      let scale = if bad then b.bad_scale else b.good_scale in
      if scale = 1.0 then r
      else
        {
          drop = Float.min 1.0 (r.drop *. scale);
          dup = Float.min 1.0 (r.dup *. scale);
          reorder = Float.min 1.0 (r.reorder *. scale);
        }

let send_faulty t ~at msg =
  let r =
    match msg.Message.vnet with
    | Message.Request -> t.config.request
    | Message.Response -> t.config.response
  in
  let r = effective_rates t msg r in
  let natural =
    if r.drop > 0.0 && Prng.chance t.prng r.drop then
      { dropped = true; reorder_jitter = 0; dup_jitter = 0 }
    else begin
      let reorder_jitter =
        if r.reorder > 0.0 && Prng.chance t.prng r.reorder then
          1 + Prng.int t.prng t.config.max_jitter
        else 0
      in
      let dup_jitter =
        if r.dup > 0.0 && Prng.chance t.prng r.dup then
          1 + Prng.int t.prng t.config.max_jitter
        else 0
      in
      { dropped = false; reorder_jitter; dup_jitter }
    end
  in
  let d =
    match t.tap with
    | None -> natural
    | Some f -> f ~site:t.site natural
  in
  t.site <- t.site + 1;
  if d.dropped then begin
    Stats.Counter.incr t.c_dropped;
    (* the wire's reference dies here: a dropped message never reaches a
       receiver, so nobody downstream will release it *)
    Message.Pool.release msg
  end
  else begin
    if d.reorder_jitter > 0 then Stats.Counter.incr t.c_reordered;
    Fabric.send t.fabric ~at:(at + d.reorder_jitter) msg;
    if d.dup_jitter > 0 then begin
      Stats.Counter.incr t.c_duplicated;
      (* the copy on the wire is a second reference; the receive path
         releases each delivered instance independently *)
      Message.Pool.retain msg;
      Fabric.send t.fabric ~at:(at + d.dup_jitter) msg
    end
  end

let send t ~at msg =
  (* A crashed source's network interface is dead silicon: the send
     vanishes before the fault model even sees it — no PRNG draw, no tap
     site, so crash schedules never shift the pinned main-stream order. *)
  if is_down t ~node:msg.Message.src ~at then crash_drop t msg
  else send_faulty t ~at msg

(* Out-of-band send for the liveness protocol: bypasses the fault model's
   PRNG entirely (heartbeats must not perturb the pinned draw order, and a
   lossy fabric delaying a heartbeat is modelled by the lease budget, not
   by per-message faults) but still respects crash-stop windows on both
   ends.  A down destination is checked again at delivery by the reliable
   layer; the send-time check here just short-circuits the common case. *)
let send_oob t ~at msg =
  if is_down t ~node:msg.Message.src ~at then crash_drop t msg
  else Fabric.send t.fabric ~at msg
