module Stats = Tt_util.Stats
module Prng = Tt_util.Prng

type rates = { drop : float; dup : float; reorder : float }

let no_faults = { drop = 0.0; dup = 0.0; reorder = 0.0 }

type config = {
  seed : int;
  request : rates;
  response : rates;
  max_jitter : int;
}

let uniform ?(seed = 0x7700) ?(drop = 0.0) ?(dup = 0.0) ?(reorder = 0.0)
    ?(max_jitter = 40) () =
  let r = { drop; dup; reorder } in
  { seed; request = r; response = r; max_jitter }

let per_vnet ?(seed = 0x7700) ?(max_jitter = 40) ~request ~response () =
  { seed; request; response; max_jitter }

type decision = { dropped : bool; reorder_jitter : int; dup_jitter : int }

let deliver = { dropped = false; reorder_jitter = 0; dup_jitter = 0 }

type t = {
  fabric : Fabric.t;
  prng : Prng.t;
  config : config;
  counters : Stats.t;
  c_dropped : Stats.counter;
  c_duplicated : Stats.counter;
  c_reordered : Stats.counter;
  mutable tap : (site:int -> decision -> decision) option;
  mutable site : int;
}

let create config fabric =
  let counters = Stats.create "faults" in
  {
    fabric;
    prng = Prng.create ~seed:config.seed;
    config;
    counters;
    c_dropped = Stats.counter counters "faults.dropped";
    c_duplicated = Stats.counter counters "faults.duplicated";
    c_reordered = Stats.counter counters "faults.reordered";
    tap = None;
    site = 0;
  }

let stats t = t.counters

let dropped t = Stats.Counter.get t.c_dropped

let set_tap t tap = t.tap <- tap

let sites t = t.site

(* The PRNG draw sequence per send is fixed — see the .mli contract:
   (1) drop chance; a dropped message draws nothing further; surviving
   messages draw (2) reorder chance, (3) reorder jitter iff (2) hit,
   (4) dup chance, (5) dup jitter iff (4) hit — so a given seed yields a
   bit-reproducible fault pattern for a given traffic sequence, and since
   the simulation itself is deterministic, for a given (seed, config) pair
   entirely.  The tap (if any) observes the drawn decision and may replace
   it; the PRNG stream is consumed identically either way, so masking or
   replaying decisions never shifts later draws. *)
let send t ~at msg =
  let r =
    match msg.Message.vnet with
    | Message.Request -> t.config.request
    | Message.Response -> t.config.response
  in
  let natural =
    if r.drop > 0.0 && Prng.chance t.prng r.drop then
      { dropped = true; reorder_jitter = 0; dup_jitter = 0 }
    else begin
      let reorder_jitter =
        if r.reorder > 0.0 && Prng.chance t.prng r.reorder then
          1 + Prng.int t.prng t.config.max_jitter
        else 0
      in
      let dup_jitter =
        if r.dup > 0.0 && Prng.chance t.prng r.dup then
          1 + Prng.int t.prng t.config.max_jitter
        else 0
      in
      { dropped = false; reorder_jitter; dup_jitter }
    end
  in
  let d =
    match t.tap with
    | None -> natural
    | Some f -> f ~site:t.site natural
  in
  t.site <- t.site + 1;
  if d.dropped then begin
    Stats.Counter.incr t.c_dropped;
    (* the wire's reference dies here: a dropped message never reaches a
       receiver, so nobody downstream will release it *)
    Message.Pool.release msg
  end
  else begin
    if d.reorder_jitter > 0 then Stats.Counter.incr t.c_reordered;
    Fabric.send t.fabric ~at:(at + d.reorder_jitter) msg;
    if d.dup_jitter > 0 then begin
      Stats.Counter.incr t.c_duplicated;
      (* the copy on the wire is a second reference; the receive path
         releases each delivered instance independently *)
      Message.Pool.retain msg;
      Fabric.send t.fabric ~at:(at + d.dup_jitter) msg
    end
  end
