module Stats = Tt_util.Stats
module Prng = Tt_util.Prng

type rates = { drop : float; dup : float; reorder : float }

let no_faults = { drop = 0.0; dup = 0.0; reorder = 0.0 }

type burst = {
  p_enter : float;
  p_exit : float;
  good_scale : float;
  bad_scale : float;
}

let bursty ?(p_enter = 0.05) ?(p_exit = 0.25) ?(good_scale = 0.0)
    ?(bad_scale = 10.0) () =
  let chk what p =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Faults.bursty: %s out of [0,1]" what)
  in
  chk "p_enter" p_enter;
  chk "p_exit" p_exit;
  if good_scale < 0.0 || bad_scale < 0.0 then
    invalid_arg "Faults.bursty: negative rate scale";
  { p_enter; p_exit; good_scale; bad_scale }

type config = {
  seed : int;
  request : rates;
  response : rates;
  max_jitter : int;
  burst : burst option;
}

let uniform ?(seed = 0x7700) ?(drop = 0.0) ?(dup = 0.0) ?(reorder = 0.0)
    ?(max_jitter = 40) ?burst () =
  let r = { drop; dup; reorder } in
  { seed; request = r; response = r; max_jitter; burst }

let per_vnet ?(seed = 0x7700) ?(max_jitter = 40) ?burst ~request ~response () =
  { seed; request; response; max_jitter; burst }

type decision = { dropped : bool; reorder_jitter : int; dup_jitter : int }

let deliver = { dropped = false; reorder_jitter = 0; dup_jitter = 0 }

type t = {
  fabric : Fabric.t;
  prng : Prng.t;
  config : config;
  counters : Stats.t;
  c_dropped : Stats.counter;
  c_duplicated : Stats.counter;
  c_reordered : Stats.counter;
  c_burst_bad : Stats.counter;
  (* Gilbert–Elliott link state, lazily allocated per (src,dst) link.  Each
     link owns a private PRNG stream for its state transitions so the main
     stream's pinned draw order (see .mli) is untouched by burst mode. *)
  nnodes : int;
  link_rngs : Prng.t option array;
  link_bad : bool array;
  mutable tap : (site:int -> decision -> decision) option;
  mutable site : int;
}

let create config fabric =
  let counters = Stats.create "faults" in
  let nnodes = Fabric.nodes fabric in
  let nlinks = match config.burst with None -> 0 | Some _ -> nnodes * nnodes in
  {
    fabric;
    prng = Prng.create ~seed:config.seed;
    config;
    counters;
    c_dropped = Stats.counter counters "faults.dropped";
    c_duplicated = Stats.counter counters "faults.duplicated";
    c_reordered = Stats.counter counters "faults.reordered";
    c_burst_bad = Stats.counter counters "faults.burst_bad_sends";
    nnodes;
    link_rngs = Array.make nlinks None;
    link_bad = Array.make nlinks false;
    tap = None;
    site = 0;
  }

let stats t = t.counters

let dropped t = Stats.Counter.get t.c_dropped

let set_tap t tap = t.tap <- tap

let sites t = t.site

(* The PRNG draw sequence per send is fixed — see the .mli contract:
   (1) drop chance; a dropped message draws nothing further; surviving
   messages draw (2) reorder chance, (3) reorder jitter iff (2) hit,
   (4) dup chance, (5) dup jitter iff (4) hit — so a given seed yields a
   bit-reproducible fault pattern for a given traffic sequence, and since
   the simulation itself is deterministic, for a given (seed, config) pair
   entirely.  The tap (if any) observes the drawn decision and may replace
   it; the PRNG stream is consumed identically either way, so masking or
   replaying decisions never shifts later draws. *)
(* One Gilbert–Elliott state transition per send, drawn from the link's
   private stream: in the bad state the vnet's configured rates are scaled
   by [bad_scale] (clamped to probability 1), in the good state by
   [good_scale].  Scales of 1.0 make burst mode draw-for-draw identical to
   no burst on the main stream, which is how the draw-order preservation is
   pinned by test. *)
let effective_rates t (msg : Message.t) r =
  match t.config.burst with
  | None -> r
  | Some b ->
      let link = (msg.Message.src * t.nnodes) + msg.Message.dst in
      let rng =
        match t.link_rngs.(link) with
        | Some g -> g
        | None ->
            let g =
              Prng.create ~seed:(t.config.seed lxor ((link + 1) * 0x9E3779B9))
            in
            t.link_rngs.(link) <- Some g;
            g
      in
      let bad =
        if t.link_bad.(link) then not (Prng.chance rng b.p_exit)
        else Prng.chance rng b.p_enter
      in
      t.link_bad.(link) <- bad;
      if bad then Stats.Counter.incr t.c_burst_bad;
      let scale = if bad then b.bad_scale else b.good_scale in
      if scale = 1.0 then r
      else
        {
          drop = Float.min 1.0 (r.drop *. scale);
          dup = Float.min 1.0 (r.dup *. scale);
          reorder = Float.min 1.0 (r.reorder *. scale);
        }

let send t ~at msg =
  let r =
    match msg.Message.vnet with
    | Message.Request -> t.config.request
    | Message.Response -> t.config.response
  in
  let r = effective_rates t msg r in
  let natural =
    if r.drop > 0.0 && Prng.chance t.prng r.drop then
      { dropped = true; reorder_jitter = 0; dup_jitter = 0 }
    else begin
      let reorder_jitter =
        if r.reorder > 0.0 && Prng.chance t.prng r.reorder then
          1 + Prng.int t.prng t.config.max_jitter
        else 0
      in
      let dup_jitter =
        if r.dup > 0.0 && Prng.chance t.prng r.dup then
          1 + Prng.int t.prng t.config.max_jitter
        else 0
      in
      { dropped = false; reorder_jitter; dup_jitter }
    end
  in
  let d =
    match t.tap with
    | None -> natural
    | Some f -> f ~site:t.site natural
  in
  t.site <- t.site + 1;
  if d.dropped then begin
    Stats.Counter.incr t.c_dropped;
    (* the wire's reference dies here: a dropped message never reaches a
       receiver, so nobody downstream will release it *)
    Message.Pool.release msg
  end
  else begin
    if d.reorder_jitter > 0 then Stats.Counter.incr t.c_reordered;
    Fabric.send t.fabric ~at:(at + d.reorder_jitter) msg;
    if d.dup_jitter > 0 then begin
      Stats.Counter.incr t.c_duplicated;
      (* the copy on the wire is a second reference; the receive path
         releases each delivered instance independently *)
      Message.Pool.retain msg;
      Fabric.send t.fabric ~at:(at + d.dup_jitter) msg
    end
  end
