(** Point-to-point interconnect.

    Constant-latency delivery (Table 2: 11 cycles), matching the paper's
    stated modelling level ("the simulations do not accurately model network
    … contention").  Each node registers one receiver — its network
    interface (NP or hardware directory controller) — which is invoked as an
    engine event at the arrival time.  Messages from a node to itself
    short-circuit the network (§5.1) and are delivered after
    [local_latency] (default 1 cycle).

    Per-virtual-network message and word counts are recorded for the traffic
    comparisons behind Figures 3 and 4. *)

type t

val create :
  Tt_sim.Engine.t -> nodes:int -> latency:int -> ?local_latency:int ->
  ?words_per_cycle:int -> ?capacity:int -> unit -> t
(** [words_per_cycle] enables the optional contention model: arrivals at a
    node are serialized through its network port at that payload bandwidth
    (the paper's model is contention-free; this is the [ablation] knob).
    [capacity] (default unbounded) caps the number of messages in flight;
    a send that would exceed it raises {!Overload.Overload} — with the
    {!Flow} credit layer above, an ample capacity is a pure safety net. *)

val nodes : t -> int

val latency : t -> int

val set_receiver : t -> node:int -> (Message.t -> unit) -> unit
(** Must be set for every node before traffic reaches it. *)

val send : t -> at:int -> Message.t -> unit
(** Inject a message at absolute time [at] (the sender's clock); it is
    delivered to the destination's receiver at [at + latency] (engine-time
    clamped so causality holds even if the sender's clock lags global
    time). *)

val set_partition :
  t -> local:(int -> bool) -> remote:(at:int -> Message.t -> unit) -> unit
(** Split the fabric for the domains-parallel engine: a {!send} whose
    destination fails the [local] predicate is handed to [remote] at its
    departure time instead of being scheduled here; the glue code forwards
    it (via [Tt_sim.Domains.post], at [at + latency] — never below the
    lookahead bound, since latency {e is} the lookahead) to the owning
    partition's fabric, which delivers it with {!inject}.  Sender-side
    traffic counters still accrue here, so per-fabric stats sum to the
    single-fabric totals.  Raises [Invalid_argument] if the fabric was
    created with [words_per_cycle]: the port-contention clocks cannot be
    split deterministically. *)

val inject : t -> at:int -> Message.t -> unit
(** Deliver a message handed over from a peer partition at absolute arrival
    time [at] (clamped to this engine's clock).  The destination must be a
    node of this fabric. *)

val stats : t -> Tt_util.Stats.t
(** Counters: [msgs.request], [msgs.response], [words.request],
    [words.response], [msgs.local]. *)
