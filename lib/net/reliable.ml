module Stats = Tt_util.Stats
module Engine = Tt_sim.Engine

type policy = Perfect | Flaky of Faults.config

exception Link_failed of string

let ack_handler = -1

(* Sender-side state for one (owner, peer) pair: the owner stamps every
   outgoing message with the next sequence number and keeps it queued until
   the peer's cumulative ack covers it. *)
type chan = {
  ch_src : int;
  ch_dst : int;
  mutable next_seq : int;
  unacked : Message.t Queue.t;
  mutable retries : int;  (* consecutive timeouts without ack progress *)
  mutable rto : int;
  mutable timer_gen : int;  (* engine events can't be cancelled; stale
                               timer firings compare against this *)
  mutable timer_armed : bool;
}

(* Receiver-side state for one (peer, owner) pair: in-order delivery point
   plus a bounded reassembly window for out-of-order arrivals. *)
type rchan = {
  mutable expected : int;
  ooo : (int, Message.t) Hashtbl.t;
  mutable last_acked : int;
  mutable need_ack : bool;
  mutable ack_gen : int;
  mutable ack_armed : bool;
}

type flaky = {
  engine : Engine.t;
  fabric : Fabric.t;
  faults : Faults.t;
  nnodes : int;
  base_rto : int;
  rto_cap : int;
  max_retries : int;
  ack_delay : int;
  window : int;
  senders : chan option array;  (* src * nnodes + dst *)
  rstates : rchan option array; (* src * nnodes + dst, held at dst *)
  apps : (Message.t -> unit) option array;
  c_data_sent : Stats.counter;
  c_retransmits : Stats.counter;
  c_acks_sent : Stats.counter;
  c_dup_dropped : Stats.counter;
  c_window_drops : Stats.counter;
}

type t = {
  fabric : Fabric.t;
  policy : policy;
  counters : Stats.t;
  flaky : flaky option;
}

let sender st ~src ~dst =
  let i = (src * st.nnodes) + dst in
  match st.senders.(i) with
  | Some ch -> ch
  | None ->
      let ch =
        { ch_src = src; ch_dst = dst; next_seq = 0; unacked = Queue.create ();
          retries = 0; rto = st.base_rto; timer_gen = 0; timer_armed = false }
      in
      st.senders.(i) <- Some ch;
      ch

let rstate st ~src ~dst =
  let i = (src * st.nnodes) + dst in
  match st.rstates.(i) with
  | Some rc -> rc
  | None ->
      let rc =
        { expected = 0; ooo = Hashtbl.create 16; last_acked = -1;
          need_ack = false; ack_gen = 0; ack_armed = false }
      in
      st.rstates.(i) <- Some rc;
      rc

let rec arm_retx st ch =
  ch.timer_armed <- true;
  ch.timer_gen <- ch.timer_gen + 1;
  let gen = ch.timer_gen in
  Engine.after st.engine ch.rto (fun () -> on_retx_timer st ch gen)

and on_retx_timer st ch gen =
  if gen <> ch.timer_gen then ()
  else if Queue.is_empty ch.unacked then ch.timer_armed <- false
  else begin
    ch.retries <- ch.retries + 1;
    if ch.retries > st.max_retries then
      raise
        (Link_failed
           (Printf.sprintf
              "reliable: link %d->%d gave up after %d retransmit rounds \
               (first unacked seq %d, %d queued, rto %d cycles)"
              ch.ch_src ch.ch_dst ch.retries
              (Queue.peek ch.unacked).Message.seq
              (Queue.length ch.unacked) ch.rto));
    let now = Engine.now st.engine in
    Queue.iter
      (fun m ->
        Stats.Counter.incr st.c_retransmits;
        (* each resend puts one more reference on the wire; the receive
           path releases every arriving instance independently *)
        Message.Pool.retain m;
        Faults.send st.faults ~at:now m)
      ch.unacked;
    ch.rto <- min (2 * ch.rto) st.rto_cap;
    arm_retx st ch
  end

(* Cumulative ack from [peer] for the [owner]->[peer] channel. *)
let process_ack st ~owner ~peer ackno =
  match st.senders.((owner * st.nnodes) + peer) with
  | None -> ()
  | Some ch ->
      let progressed = ref false in
      while
        (not (Queue.is_empty ch.unacked))
        && (Queue.peek ch.unacked).Message.seq <= ackno
      do
        Message.Pool.release (Queue.pop ch.unacked);
        progressed := true
      done;
      if !progressed then begin
        ch.retries <- 0;
        ch.rto <- st.base_rto;
        ch.timer_gen <- ch.timer_gen + 1;
        if Queue.is_empty ch.unacked then ch.timer_armed <- false
        else arm_retx st ch
      end

let rec arm_ack st ~src ~dst rc =
  if not rc.ack_armed then begin
    rc.ack_armed <- true;
    rc.ack_gen <- rc.ack_gen + 1;
    let gen = rc.ack_gen in
    Engine.after st.engine st.ack_delay (fun () -> on_ack_timer st ~src ~dst rc gen)
  end

and on_ack_timer st ~src ~dst rc gen =
  if gen <> rc.ack_gen then ()
  else begin
    rc.ack_armed <- false;
    (* a piggybacked ack may have covered us in the meantime *)
    if rc.need_ack || rc.expected - 1 > rc.last_acked then begin
      let ackno = rc.expected - 1 in
      rc.last_acked <- ackno;
      rc.need_ack <- false;
      Stats.Counter.incr st.c_acks_sent;
      (* standalone acks ride the response network unsequenced: they carry
         no protocol payload, so ordering and delivery are best-effort
         (a lost ack is repaired by the sender's retransmission) *)
      let m =
        Message.Pool.acquire ~src:dst ~dst:src ~vnet:Message.Response
          ~handler:ack_handler ~ack:ackno ()
      in
      Faults.send st.faults ~at:(Engine.now st.engine) m
    end
  end

let deliver st msg =
  match st.apps.(msg.Message.dst) with
  | Some f -> f msg
  | None ->
      invalid_arg
        (Printf.sprintf
           "Reliable: node %d has no receiver (message src=%d dst=%d \
            handler=%d)"
           msg.Message.dst msg.Message.src msg.Message.dst msg.Message.handler)

(* Ownership: each arriving instance carries one wire reference.  It is
   either consumed here (ack-only, duplicate, window drop: released),
   handed to the application via [deliver] (the dispatcher releases it
   after the handler returns), or parked in the reassembly table (the
   table's reference; released back to the app when drained). *)
let on_wire st msg =
  let s = msg.Message.src and d = msg.Message.dst in
  if msg.Message.ack >= 0 then process_ack st ~owner:d ~peer:s msg.Message.ack;
  if msg.Message.seq < 0 then begin
    (* unsequenced: standalone acks (consumed here) or local short-circuit
       traffic that bypassed the transport *)
    if msg.Message.handler <> ack_handler then deliver st msg
    else Message.Pool.release msg
  end
  else begin
    let rc = rstate st ~src:s ~dst:d in
    if msg.Message.seq < rc.expected then begin
      (* duplicate of something already delivered (retransmit or fault
         dup); suppress, but refresh the ack so the sender stops *)
      Stats.Counter.incr st.c_dup_dropped;
      Message.Pool.release msg;
      rc.need_ack <- true;
      arm_ack st ~src:s ~dst:d rc
    end
    else if msg.Message.seq >= rc.expected + st.window then begin
      (* beyond the reassembly window: drop without acking; the sender's
         retransmission re-offers it once the window has advanced *)
      Stats.Counter.incr st.c_window_drops;
      Message.Pool.release msg
    end
    else begin
      if msg.Message.seq = rc.expected then begin
        deliver st msg;
        rc.expected <- rc.expected + 1;
        let rec drain () =
          match Hashtbl.find_opt rc.ooo rc.expected with
          | Some m ->
              Hashtbl.remove rc.ooo rc.expected;
              deliver st m;
              rc.expected <- rc.expected + 1;
              drain ()
          | None -> ()
        in
        drain ()
      end
      else if Hashtbl.mem rc.ooo msg.Message.seq then begin
        Stats.Counter.incr st.c_dup_dropped;
        Message.Pool.release msg
      end
      else Hashtbl.replace rc.ooo msg.Message.seq msg;
      rc.need_ack <- true;
      arm_ack st ~src:s ~dst:d rc
    end
  end

let flaky_send (st : flaky) ~at msg =
  let src = msg.Message.src and dst = msg.Message.dst in
  if src = dst then
    (* node-to-self messages short-circuit the network (§5.1) and are
       neither faulted nor sequenced *)
    Fabric.send st.fabric ~at msg
  else begin
    let ch = sender st ~src ~dst in
    (* piggyback our cumulative ack for the reverse direction *)
    let ack =
      match st.rstates.((dst * st.nnodes) + src) with
      | None -> -1
      | Some rc ->
          let ackno = rc.expected - 1 in
          if ackno > rc.last_acked then rc.last_acked <- ackno;
          rc.need_ack <- false;
          ackno
    in
    (* stamp the transport envelope in place: the caller has handed its
       reference over, and nobody else can see the message yet *)
    msg.Message.seq <- ch.next_seq;
    msg.Message.ack <- ack;
    ch.next_seq <- ch.next_seq + 1;
    (* the retransmission queue holds its own reference until acked; the
       caller's reference rides the wire *)
    Message.Pool.retain msg;
    Queue.add msg ch.unacked;
    Stats.Counter.incr st.c_data_sent;
    if not ch.timer_armed then arm_retx st ch;
    Faults.send st.faults ~at msg
  end

let create ?base_rto ?rto_cap ?(max_retries = 10) ?ack_delay ?(window = 512)
    engine fabric policy =
  let counters = Stats.create "reliable" in
  let flaky =
    match policy with
    | Perfect -> None
    | Flaky cfg ->
        let lat = Fabric.latency fabric in
        let base_rto =
          match base_rto with Some r -> r | None -> 24 * lat
        in
        let rto_cap =
          match rto_cap with Some r -> r | None -> 64 * base_rto
        in
        let ack_delay =
          match ack_delay with Some d -> d | None -> 2 * lat
        in
        if base_rto <= 0 || rto_cap < base_rto || max_retries < 1
           || ack_delay <= 0 || window < 1
        then invalid_arg "Reliable.create: bad transport parameters";
        let n = Fabric.nodes fabric in
        let st =
          {
            engine; fabric; faults = Faults.create cfg fabric; nnodes = n;
            base_rto; rto_cap; max_retries; ack_delay; window;
            senders = Array.make (n * n) None;
            rstates = Array.make (n * n) None;
            apps = Array.make n None;
            c_data_sent = Stats.counter counters "reliable.data_sent";
            c_retransmits = Stats.counter counters "reliable.retransmits";
            c_acks_sent = Stats.counter counters "reliable.acks_sent";
            c_dup_dropped = Stats.counter counters "reliable.dup_dropped";
            c_window_drops = Stats.counter counters "reliable.window_drops";
          }
        in
        for node = 0 to n - 1 do
          Fabric.set_receiver fabric ~node (fun msg -> on_wire st msg)
        done;
        Some st
  in
  { fabric; policy; counters; flaky }

let policy t = t.policy

let send t ~at msg =
  match t.flaky with
  | None -> Fabric.send t.fabric ~at msg
  | Some st -> flaky_send st ~at msg

let set_receiver t ~node f =
  match t.flaky with
  | None -> Fabric.set_receiver t.fabric ~node f
  | Some st ->
      if node < 0 || node >= st.nnodes then
        invalid_arg "Reliable.set_receiver";
      st.apps.(node) <- Some f

let stats t = t.counters

let fault_stats t =
  match t.flaky with None -> None | Some st -> Some (Faults.stats st.faults)

let retransmits t =
  match t.flaky with
  | None -> 0
  | Some st -> Stats.Counter.get st.c_retransmits

let faults t =
  match t.flaky with None -> None | Some st -> Some st.faults
