module Stats = Tt_util.Stats
module Engine = Tt_sim.Engine

type policy = Perfect | Flaky of Faults.config

exception Link_failed of string

exception Peer_dead of string

let ack_handler = -1

let liveness_handler = -2

(* Sender-side state for one (owner, peer) pair: the owner stamps every
   outgoing message with the next sequence number and keeps it queued until
   the peer's cumulative ack covers it. *)
type chan = {
  ch_src : int;
  ch_dst : int;
  mutable next_seq : int;
  unacked : Message.t Queue.t;
  mutable retries : int;  (* consecutive timeouts without ack progress *)
  mutable rto : int;
  mutable timer_gen : int;  (* engine events can't be cancelled; stale
                               timer firings compare against this *)
  mutable timer_armed : bool;
  mutable parked : bool;  (* peer declared dead (or we crashed): hold the
                             unacked queue, stop the retransmit clock *)
}

(* Receiver-side state for one (peer, owner) pair: in-order delivery point
   plus a bounded reassembly window for out-of-order arrivals. *)
type rchan = {
  mutable expected : int;
  ooo : (int, Message.t) Hashtbl.t;
  mutable last_acked : int;
  mutable need_ack : bool;
  mutable ack_gen : int;
  mutable ack_armed : bool;
}

type flaky = {
  engine : Engine.t;
  fabric : Fabric.t;
  faults : Faults.t;
  nnodes : int;
  base_rto : int;
  rto_cap : int;
  max_retries : int;
  ack_delay : int;
  window : int;
  senders : chan option array;  (* src * nnodes + dst *)
  rstates : rchan option array; (* src * nnodes + dst, held at dst *)
  apps : (Message.t -> unit) option array;
  (* liveness wiring: [is_dead] is the user-level protocol's verdict
     (default: nobody is ever dead — bit-identical to the pre-liveness
     code); [death_notice] converts a dead-peer encounter into a callback
     instead of a [Peer_dead] raise; [liveness_rx] consumes out-of-band
     heartbeat messages (transport handler [liveness_handler]). *)
  mutable is_dead : int -> bool;
  mutable death_notice : (src:int -> dst:int -> unit) option;
  mutable liveness_rx : (Message.t -> unit) option;
  c_data_sent : Stats.counter;
  c_retransmits : Stats.counter;
  c_acks_sent : Stats.counter;
  c_dup_dropped : Stats.counter;
  c_window_drops : Stats.counter;
  c_rejoin_retransmits : Stats.counter;
}

type t = {
  fabric : Fabric.t;
  policy : policy;
  counters : Stats.t;
  flaky : flaky option;
}

let sender st ~src ~dst =
  let i = (src * st.nnodes) + dst in
  match st.senders.(i) with
  | Some ch -> ch
  | None ->
      let ch =
        { ch_src = src; ch_dst = dst; next_seq = 0; unacked = Queue.create ();
          retries = 0; rto = st.base_rto; timer_gen = 0; timer_armed = false;
          parked = false }
      in
      st.senders.(i) <- Some ch;
      ch

let rstate st ~src ~dst =
  let i = (src * st.nnodes) + dst in
  match st.rstates.(i) with
  | Some rc -> rc
  | None ->
      let rc =
        { expected = 0; ooo = Hashtbl.create 16; last_acked = -1;
          need_ack = false; ack_gen = 0; ack_armed = false }
      in
      st.rstates.(i) <- Some rc;
      rc

let rec arm_retx st ch =
  ch.timer_armed <- true;
  ch.timer_gen <- ch.timer_gen + 1;
  let gen = ch.timer_gen in
  Engine.after st.engine ch.rto (fun () -> on_retx_timer st ch gen)

(* Liveness declared the destination dead: stop the retransmit clock and
   keep the unacked queue (a rejoin is a healed partition — the queue is
   replayed by [on_peer_alive]).  From here on this channel contributes
   nothing to [reliable.retransmits], so a dead peer can no longer burn the
   watchdog's retransmit budget.  Without a recovery layer listening, the
   verdict surfaces immediately as [Peer_dead] — the prompt notification
   that replaces a [max_retries]-long retransmission storm. *)
and park_dead st ch =
  ch.parked <- true;
  ch.timer_armed <- false;
  ch.timer_gen <- ch.timer_gen + 1;
  ch.retries <- 0;
  match st.death_notice with
  | Some f -> f ~src:ch.ch_src ~dst:ch.ch_dst
  | None ->
      raise
        (Peer_dead
           (Printf.sprintf
              "reliable: peer %d declared dead by liveness (link %d->%d, %d \
               unacked messages held)"
              ch.ch_dst ch.ch_src ch.ch_dst (Queue.length ch.unacked)))

and on_retx_timer st ch gen =
  if gen <> ch.timer_gen then ()
  else if Queue.is_empty ch.unacked then ch.timer_armed <- false
  else if st.is_dead ch.ch_dst then park_dead st ch
  else if
    Faults.is_down st.faults ~node:ch.ch_src ~at:(Engine.now st.engine)
  then begin
    (* we are the crashed node: nothing leaves the NIC, so resending is
       pointless and these rounds must not burn the retry budget.  Keep
       the timer ticking (with backoff) so a sub-lease outage resumes
       retransmission by itself once the node reboots — there is no
       verdict, hence no [on_peer_alive] replay, in that case.  If the
       outage did outlast the lease, the death-verdict scrub has already
       rewritten this queue to no-ops, so a post-reboot resend racing the
       revival verdict replays harmless no-ops in sequence order. *)
    ch.retries <- 0;
    ch.rto <- min (2 * ch.rto) st.rto_cap;
    arm_retx st ch
  end
  else begin
    ch.retries <- ch.retries + 1;
    if ch.retries > st.max_retries then
      raise
        (Link_failed
           (Printf.sprintf
              "reliable: link %d->%d gave up after %d retransmit rounds \
               (first unacked seq %d, %d queued, rto %d cycles)"
              ch.ch_src ch.ch_dst ch.retries
              (Queue.peek ch.unacked).Message.seq
              (Queue.length ch.unacked) ch.rto));
    let now = Engine.now st.engine in
    Queue.iter
      (fun m ->
        Stats.Counter.incr st.c_retransmits;
        (* each resend puts one more reference on the wire; the receive
           path releases every arriving instance independently *)
        Message.Pool.retain m;
        Faults.send st.faults ~at:now m)
      ch.unacked;
    ch.rto <- min (2 * ch.rto) st.rto_cap;
    arm_retx st ch
  end

(* Cumulative ack from [peer] for the [owner]->[peer] channel. *)
let process_ack st ~owner ~peer ackno =
  match st.senders.((owner * st.nnodes) + peer) with
  | None -> ()
  | Some ch ->
      let progressed = ref false in
      while
        (not (Queue.is_empty ch.unacked))
        && (Queue.peek ch.unacked).Message.seq <= ackno
      do
        Message.Pool.release (Queue.pop ch.unacked);
        progressed := true
      done;
      if !progressed then begin
        ch.retries <- 0;
        ch.rto <- st.base_rto;
        ch.timer_gen <- ch.timer_gen + 1;
        if Queue.is_empty ch.unacked || ch.parked then
          ch.timer_armed <- false
        else arm_retx st ch
      end

let rec arm_ack st ~src ~dst rc =
  if not rc.ack_armed then begin
    rc.ack_armed <- true;
    rc.ack_gen <- rc.ack_gen + 1;
    let gen = rc.ack_gen in
    Engine.after st.engine st.ack_delay (fun () -> on_ack_timer st ~src ~dst rc gen)
  end

and on_ack_timer st ~src ~dst rc gen =
  if gen <> rc.ack_gen then ()
  else begin
    rc.ack_armed <- false;
    (* a piggybacked ack may have covered us in the meantime *)
    if rc.need_ack || rc.expected - 1 > rc.last_acked then begin
      let ackno = rc.expected - 1 in
      rc.last_acked <- ackno;
      rc.need_ack <- false;
      Stats.Counter.incr st.c_acks_sent;
      (* standalone acks ride the response network unsequenced: they carry
         no protocol payload, so ordering and delivery are best-effort
         (a lost ack is repaired by the sender's retransmission) *)
      let m =
        Message.Pool.acquire ~src:dst ~dst:src ~vnet:Message.Response
          ~handler:ack_handler ~ack:ackno ()
      in
      Faults.send st.faults ~at:(Engine.now st.engine) m
    end
  end

let deliver st msg =
  match st.apps.(msg.Message.dst) with
  | Some f -> f msg
  | None ->
      invalid_arg
        (Printf.sprintf
           "Reliable: node %d has no receiver (message src=%d dst=%d \
            handler=%d)"
           msg.Message.dst msg.Message.src msg.Message.dst msg.Message.handler)

(* Ownership: each arriving instance carries one wire reference.  It is
   either consumed here (ack-only, duplicate, window drop: released),
   handed to the application via [deliver] (the dispatcher releases it
   after the handler returns), or parked in the reassembly table (the
   table's reference; released back to the app when drained). *)
let on_wire st msg =
  let s = msg.Message.src and d = msg.Message.dst in
  (* a crashed destination's endpoint is deaf: the delivery vanishes before
     any transport state (acks, sequencing, liveness) can observe it *)
  if Faults.is_down st.faults ~node:d ~at:(Engine.now st.engine) then
    Faults.crash_drop st.faults msg
  else begin
  if msg.Message.ack >= 0 then process_ack st ~owner:d ~peer:s msg.Message.ack;
  if msg.Message.seq < 0 then begin
    (* unsequenced: standalone acks and liveness heartbeats (consumed
       here) or local short-circuit traffic that bypassed the transport *)
    if msg.Message.handler = ack_handler then Message.Pool.release msg
    else if msg.Message.handler = liveness_handler then begin
      (match st.liveness_rx with Some f -> f msg | None -> ());
      Message.Pool.release msg
    end
    else deliver st msg
  end
  else begin
    let rc = rstate st ~src:s ~dst:d in
    if msg.Message.seq < rc.expected then begin
      (* duplicate of something already delivered (retransmit or fault
         dup); suppress, but refresh the ack so the sender stops *)
      Stats.Counter.incr st.c_dup_dropped;
      Message.Pool.release msg;
      rc.need_ack <- true;
      arm_ack st ~src:s ~dst:d rc
    end
    else if msg.Message.seq >= rc.expected + st.window then begin
      (* beyond the reassembly window: drop without acking; the sender's
         retransmission re-offers it once the window has advanced *)
      Stats.Counter.incr st.c_window_drops;
      Message.Pool.release msg
    end
    else begin
      if msg.Message.seq = rc.expected then begin
        deliver st msg;
        rc.expected <- rc.expected + 1;
        let rec drain () =
          match Hashtbl.find_opt rc.ooo rc.expected with
          | Some m ->
              Hashtbl.remove rc.ooo rc.expected;
              deliver st m;
              rc.expected <- rc.expected + 1;
              drain ()
          | None -> ()
        in
        drain ()
      end
      else if Hashtbl.mem rc.ooo msg.Message.seq then begin
        Stats.Counter.incr st.c_dup_dropped;
        Message.Pool.release msg
      end
      else Hashtbl.replace rc.ooo msg.Message.seq msg;
      rc.need_ack <- true;
      arm_ack st ~src:s ~dst:d rc
    end
  end
  end

let flaky_send (st : flaky) ~at msg =
  let src = msg.Message.src and dst = msg.Message.dst in
  if src = dst then
    (* node-to-self messages short-circuit the network (§5.1) and are
       neither faulted nor sequenced *)
    Fabric.send st.fabric ~at msg
  else begin
    let ch = sender st ~src ~dst in
    (* piggyback our cumulative ack for the reverse direction *)
    let ack =
      match st.rstates.((dst * st.nnodes) + src) with
      | None -> -1
      | Some rc ->
          let ackno = rc.expected - 1 in
          if ackno > rc.last_acked then rc.last_acked <- ackno;
          rc.need_ack <- false;
          ackno
    in
    (* stamp the transport envelope in place: the caller has handed its
       reference over, and nobody else can see the message yet *)
    msg.Message.seq <- ch.next_seq;
    msg.Message.ack <- ack;
    ch.next_seq <- ch.next_seq + 1;
    (* the retransmission queue holds its own reference until acked; the
       caller's reference rides the wire *)
    Message.Pool.retain msg;
    Queue.add msg ch.unacked;
    Stats.Counter.incr st.c_data_sent;
    if ch.parked then
      (* peer declared dead: hold for a possible rejoin, never wire it *)
      Message.Pool.release msg
    else if st.is_dead dst then begin
      Message.Pool.release msg;
      park_dead st ch
    end
    else begin
      if not ch.timer_armed then arm_retx st ch;
      Faults.send st.faults ~at msg
    end
  end

let create ?base_rto ?rto_cap ?(max_retries = 10) ?ack_delay ?(window = 512)
    engine fabric policy =
  let counters = Stats.create "reliable" in
  let flaky =
    match policy with
    | Perfect -> None
    | Flaky cfg ->
        let lat = Fabric.latency fabric in
        let base_rto =
          match base_rto with Some r -> r | None -> 24 * lat
        in
        let rto_cap =
          match rto_cap with Some r -> r | None -> 64 * base_rto
        in
        let ack_delay =
          match ack_delay with Some d -> d | None -> 2 * lat
        in
        if base_rto <= 0 || rto_cap < base_rto || max_retries < 1
           || ack_delay <= 0 || window < 1
        then invalid_arg "Reliable.create: bad transport parameters";
        let n = Fabric.nodes fabric in
        let st =
          {
            engine; fabric; faults = Faults.create cfg fabric; nnodes = n;
            base_rto; rto_cap; max_retries; ack_delay; window;
            senders = Array.make (n * n) None;
            rstates = Array.make (n * n) None;
            apps = Array.make n None;
            is_dead = (fun _ -> false);
            death_notice = None;
            liveness_rx = None;
            c_data_sent = Stats.counter counters "reliable.data_sent";
            c_retransmits = Stats.counter counters "reliable.retransmits";
            c_acks_sent = Stats.counter counters "reliable.acks_sent";
            c_dup_dropped = Stats.counter counters "reliable.dup_dropped";
            c_window_drops = Stats.counter counters "reliable.window_drops";
            c_rejoin_retransmits =
              Stats.counter counters "reliable.rejoin_retransmits";
          }
        in
        for node = 0 to n - 1 do
          Fabric.set_receiver fabric ~node (fun msg -> on_wire st msg)
        done;
        Some st
  in
  { fabric; policy; counters; flaky }

let policy t = t.policy

let send t ~at msg =
  match t.flaky with
  | None -> Fabric.send t.fabric ~at msg
  | Some st -> flaky_send st ~at msg

let set_receiver t ~node f =
  match t.flaky with
  | None -> Fabric.set_receiver t.fabric ~node f
  | Some st ->
      if node < 0 || node >= st.nnodes then
        invalid_arg "Reliable.set_receiver";
      st.apps.(node) <- Some f

let send_oob t ~at msg =
  match t.flaky with
  | None -> Fabric.send t.fabric ~at msg
  | Some st -> Faults.send_oob st.faults ~at msg

let set_liveness t ~is_dead =
  match t.flaky with
  | None -> invalid_arg "Reliable.set_liveness: Perfect transport"
  | Some st -> st.is_dead <- is_dead

let set_death_notice t f =
  match t.flaky with
  | None -> invalid_arg "Reliable.set_death_notice: Perfect transport"
  | Some st -> st.death_notice <- f

let set_liveness_receiver t f =
  match t.flaky with
  | None -> invalid_arg "Reliable.set_liveness_receiver: Perfect transport"
  | Some st -> st.liveness_rx <- Some f

(* Called on the liveness verdict: every channel toward the dead node stops
   its retransmit clock (the queue is kept — see [park_dead]).  Channels
   with nothing outstanding are parked too, so traffic initiated after the
   verdict queues instead of timing out one [max_retries] round at a time. *)
let on_peer_death t ~node =
  match t.flaky with
  | None -> ()
  | Some st ->
      for src = 0 to st.nnodes - 1 do
        if src <> node then
          match st.senders.((src * st.nnodes) + node) with
          | Some ch when not ch.parked ->
              ch.parked <- true;
              ch.timer_armed <- false;
              ch.timer_gen <- ch.timer_gen + 1;
              ch.retries <- 0
          | _ -> ()
      done

(* Called when a dead node's heartbeats resume: unpark both directions —
   survivors' channels toward the rejoined node, and the rejoined node's
   own channels (parked when its timers found their source crashed).  Held
   queues are replayed immediately; the replays count under
   [reliable.rejoin_retransmits], never against the watchdog's
   [reliable.retransmits] budget. *)
let on_peer_alive t ~node =
  match t.flaky with
  | None -> ()
  | Some st ->
      let revive ch =
        if ch.parked then begin
          ch.parked <- false;
          ch.retries <- 0;
          ch.rto <- st.base_rto;
          if not (Queue.is_empty ch.unacked) then begin
            let now = Engine.now st.engine in
            Queue.iter
              (fun m ->
                Stats.Counter.incr st.c_rejoin_retransmits;
                Message.Pool.retain m;
                Faults.send st.faults ~at:now m)
              ch.unacked;
            arm_retx st ch
          end
        end
      in
      for other = 0 to st.nnodes - 1 do
        if other <> node then begin
          (match st.senders.((other * st.nnodes) + node) with
          | Some ch -> revive ch
          | None -> ());
          match st.senders.((node * st.nnodes) + other) with
          | Some ch -> revive ch
          | None -> ()
        end
      done

(* Rewrite the handler id of every held message touching [node] — unacked
   queues in both directions plus reassembly-table residents — to [handler]
   (a recovery-registered no-op).  Sequence numbers are untouched, so the
   receiver's per-pair ordering stays intact when the queues are replayed
   after a rejoin: the stale protocol payloads are neutralized without
   tearing a hole in the sequence space.  Transport-internal unsequenced
   messages (acks, heartbeats; negative handler ids) are left alone.
   Returns the number of messages scrubbed. *)
let scrub_unacked t ~node ~handler =
  match t.flaky with
  | None -> 0
  | Some st ->
      if handler < 0 then invalid_arg "Reliable.scrub_unacked: bad handler";
      let n = ref 0 in
      let scrub m =
        if m.Message.handler >= 0 && m.Message.handler <> handler then begin
          m.Message.handler <- handler;
          incr n
        end
      in
      let scrub_chan = function
        | Some ch -> Queue.iter scrub ch.unacked
        | None -> ()
      in
      let scrub_ooo = function
        | Some rc -> Hashtbl.iter (fun _ m -> scrub m) rc.ooo
        | None -> ()
      in
      for other = 0 to st.nnodes - 1 do
        if other <> node then begin
          scrub_chan st.senders.((other * st.nnodes) + node);
          scrub_chan st.senders.((node * st.nnodes) + other);
          scrub_ooo st.rstates.((other * st.nnodes) + node);
          scrub_ooo st.rstates.((node * st.nnodes) + other)
        end
      done;
      !n

let nodes t = Fabric.nodes t.fabric

let latency t = Fabric.latency t.fabric

let stats t = t.counters

let fault_stats t =
  match t.flaky with None -> None | Some st -> Some (Faults.stats st.faults)

let retransmits t =
  match t.flaky with
  | None -> 0
  | Some st -> Stats.Counter.get st.c_retransmits

let faults t =
  match t.flaky with None -> None | Some st -> Some st.faults
