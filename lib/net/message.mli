(** Active messages (§2.1 / §5.1).

    A message names a destination node and a receive-handler (the first
    payload word in Typhoon; here a registered handler id), followed by
    argument words and optional raw block data.  The CM-5-derived network
    carries at most twenty 32-bit payload words per packet; we enforce that
    limit, counting the handler word, one word per argument and the data
    rounded up to words.

    Two virtual networks provide deadlock avoidance (§5.1): pure
    request/response protocols send requests on the low-priority net and
    responses on the high-priority net. *)

type vnet = Request | Response

val vnet_to_string : vnet -> string

type t = {
  src : int;
  dst : int;
  vnet : vnet;
  handler : int;  (** registered handler id — the "handler PC" *)
  args : int array;
  data : Bytes.t;
  seq : int;  (** {!Reliable} sequence number; -1 = unsequenced *)
  ack : int;  (** piggybacked cumulative ack; -1 = none *)
}

val max_payload_words : int
(** 20, as in Typhoon (the CM-5 allowed only five). *)

val words : t -> int
(** Packet payload size in 32-bit words (1 + |args| + ⌈|data|/4⌉). *)

val make :
  src:int -> dst:int -> vnet:vnet -> handler:int -> ?args:int array ->
  ?data:Bytes.t -> ?seq:int -> ?ack:int -> unit -> t
(** [seq] and [ack] default to -1 (no transport envelope); they are stamped
    by {!Reliable} and ride in the envelope word, so {!words} is unchanged.
    @raise Invalid_argument if the packet exceeds {!max_payload_words}. *)
