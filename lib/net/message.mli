(** Active messages (§2.1 / §5.1).

    A message names a destination node and a receive-handler (the first
    payload word in Typhoon; here a registered handler id), followed by
    argument words and optional raw block data.  The CM-5-derived network
    carries at most twenty 32-bit payload words per packet; we enforce that
    limit, counting the handler word, one word per argument and the data
    rounded up to words.

    Two virtual networks provide deadlock avoidance (§5.1): pure
    request/response protocols send requests on the low-priority net and
    responses on the high-priority net.

    Messages come in two flavours sharing one type: ordinary records built
    with {!make} (owned by the GC, [pool_rc = -1]) and pooled records from
    {!Pool.acquire} (explicitly refcounted and recycled through per-vnet
    freelists so the steady-state send path allocates nothing). *)

type vnet = Request | Response

val vnet_to_string : vnet -> string

type t = {
  mutable src : int;
  mutable dst : int;
  mutable vnet : vnet;
  mutable handler : int;  (** registered handler id — the "handler PC" *)
  mutable args : int array;
  mutable data : Bytes.t;
  mutable seq : int;  (** {!Reliable} sequence number; -1 = unsequenced *)
  mutable ack : int;  (** piggybacked cumulative ack; -1 = none *)
  mutable pool_rc : int;
      (** -1 = ordinary (never pooled), 0 = in a freelist, n≥1 = live pooled
          message with [n] owners.  Managed by {!Pool}; do not touch. *)
}

val max_payload_words : int
(** 20, as in Typhoon (the CM-5 allowed only five). *)

val words : t -> int
(** Packet payload size in 32-bit words (1 + |args| + ⌈|data|/4⌉). *)

val make :
  src:int -> dst:int -> vnet:vnet -> handler:int -> ?args:int array ->
  ?data:Bytes.t -> ?seq:int -> ?ack:int -> unit -> t
(** [seq] and [ack] default to -1 (no transport envelope); they are stamped
    by {!Reliable} and ride in the envelope word, so {!words} is unchanged.
    The result is an ordinary GC-owned message ([pool_rc = -1]); releasing
    or retaining it is a no-op.
    @raise Invalid_argument if the packet exceeds {!max_payload_words}. *)

val dummy : t
(** A placeholder message for container slots (heap dummies, ring fills).
    Never sent; never released. *)

(** Explicit-ownership message freelists, bucketed by (vnet, argument
    arity) so a recycled record's args array is always the right size and
    the two deadlock-avoidance nets never share buffers.

    Ownership protocol: {!acquire} returns a message with refcount 1 owned
    by the caller; whoever consumes the message last calls {!release}.
    A component that stores a message beyond its turn (e.g. {!Reliable}'s
    retransmission queue) must {!retain} it first.  Handlers may read a
    delivered message during the handler call only — after the handler
    returns, the dispatcher releases it and the record may be recycled into
    the very next send. *)
module Pool : sig
  val acquire :
    src:int -> dst:int -> vnet:vnet -> handler:int -> ?args:int array ->
    ?data:Bytes.t -> ?seq:int -> ?ack:int -> unit -> t
  (** Like {!make} but drawing from the freelist when possible.  [args] is
      copied into the message (so callers may pass a {!scratch} array and
      refill it immediately); [data] is referenced, not copied — ownership
      of the bytes follows the message.  When pooling is disabled (or the
      arity exceeds the packet limit) this degrades to a fresh {!make}
      with copied args.
      @raise Invalid_argument if the packet exceeds {!max_payload_words}. *)

  val acquire_raw :
    src:int -> dst:int -> vnet:vnet -> handler:int -> args:int array ->
    data:Bytes.t -> t
  (** {!acquire} without optional arguments, for the steady-state send
      path: supplying a value for an optional argument makes the call site
      box it in [Some], so {!acquire}'s convenience costs two minor words
      per supplied option.  [seq]/[ack] start at -1.  Same copy semantics
      as {!acquire}. *)

  val retain : t -> unit
  (** Add an owner.  No-op on ordinary messages.
      @raise Invalid_argument on a message already in the freelist. *)

  val release : t -> unit
  (** Drop an owner; on the last release the record returns to its
      freelist (fields poisoned first under {!Tt_util.Debug.pool_debug}).
      No-op on ordinary messages.
      @raise Invalid_argument on double-release (refcount already 0). *)

  val scratch : int -> int array
  (** [scratch n] is a shared scratch array of length [n] for building
      argument lists without allocating.  Fill it, pass it to {!acquire}
      (which copies synchronously), then reuse it freely.  Not reentrant:
      do not hold a scratch array across another send of the same arity. *)

  val set_disabled : bool -> unit
  (** Turn pooling off ([acquire] = fresh allocation) or back on.  Initial
      state comes from the [TT_POOL_DISABLE] environment variable ([1] or
      [true] disables).  Used by the bench harness to prove pooling is
      timing-neutral. *)

  val is_disabled : unit -> bool

  val free_count : unit -> int
  (** Total messages currently sitting in freelists (diagnostics). *)
end
