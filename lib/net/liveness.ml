module Stats = Tt_util.Stats
module Engine = Tt_sim.Engine

type status = Alive | Suspected | Dead

let status_to_string = function
  | Alive -> "alive"
  | Suspected -> "suspected"
  | Dead -> "dead"

type t = {
  engine : Engine.t;
  net : Reliable.t;
  nnodes : int;
  period : int;
  lease_budget : int;
  (* last cycle at which any node heard a heartbeat from peer i.  The
     out-of-band channel is PRNG-exempt and the fabric's latency is
     constant, so every live observer hears every heartbeat at the same
     cycle: the per-observer matrices of a real gossip protocol collapse
     into one agreed row, and the verdict below is system-wide and
     deterministic by construction rather than by quorum. *)
  last_heard : int array;
  statuses : status array;
  mutable on_dead : int -> unit;
  mutable on_alive : int -> unit;
  mutable stopped : bool;
  mutable epoch : int;  (* bumped by [stop]; stale loop events check it *)
  counters : Stats.t;
  c_heartbeats : Stats.counter;
  c_deaths : Stats.counter;
  c_revivals : Stats.counter;
}

let heartbeat t ~node =
  let now = Engine.now t.engine in
  for peer = 0 to t.nnodes - 1 do
    if peer <> node then begin
      Stats.Counter.incr t.c_heartbeats;
      let m =
        Message.Pool.acquire ~src:node ~dst:peer ~vnet:Message.Response
          ~handler:Reliable.liveness_handler ()
      in
      Reliable.send_oob t.net ~at:now m
    end
  done

let on_heartbeat t msg =
  let peer = msg.Message.src in
  t.last_heard.(peer) <- Engine.now t.engine;
  match t.statuses.(peer) with
  | Alive -> ()
  | Suspected -> t.statuses.(peer) <- Alive
  | Dead ->
      (* a declared-dead node speaking again is a rejoin: flip the verdict
         first so the revival hook sees the new world *)
      t.statuses.(peer) <- Alive;
      Stats.Counter.incr t.c_revivals;
      t.on_alive peer

let monitor t =
  let now = Engine.now t.engine in
  let lease = t.period * t.lease_budget in
  for peer = 0 to t.nnodes - 1 do
    let silent = now - t.last_heard.(peer) in
    match t.statuses.(peer) with
    | Dead -> ()
    | Alive | Suspected ->
        if silent > lease then begin
          t.statuses.(peer) <- Dead;
          Stats.Counter.incr t.c_deaths;
          t.on_dead peer
        end
        else if silent > lease / 2 then t.statuses.(peer) <- Suspected
        else t.statuses.(peer) <- Alive
  done

let create ?period ?(lease_budget = 4) engine net =
  (match Reliable.policy net with
  | Reliable.Flaky _ -> ()
  | Reliable.Perfect ->
      invalid_arg
        "Liveness.create: needs a Flaky transport (a perfect fabric has \
         nothing to detect)");
  if lease_budget < 2 then invalid_arg "Liveness.create: lease budget < 2";
  let lat = Reliable.latency net in
  let period =
    match period with
    | Some p -> if p <= 0 then invalid_arg "Liveness.create: period <= 0" else p
    | None -> 32 * lat
  in
  let nnodes = Reliable.nodes net in
  let counters = Stats.create "liveness" in
  let now = Engine.now engine in
  let t =
    {
      engine;
      net;
      nnodes;
      period;
      lease_budget;
      last_heard = Array.make nnodes now;
      statuses = Array.make nnodes Alive;
      on_dead = (fun _ -> ());
      on_alive = (fun _ -> ());
      stopped = false;
      epoch = 0;
      counters;
      c_heartbeats = Stats.counter counters "liveness.heartbeats";
      c_deaths = Stats.counter counters "liveness.deaths";
      c_revivals = Stats.counter counters "liveness.revivals";
    }
  in
  Reliable.set_liveness_receiver net (fun msg -> on_heartbeat t msg);
  Reliable.set_liveness net ~is_dead:(fun node -> t.statuses.(node) = Dead);
  (* staggered per-node heartbeat loops plus one monitor loop; each event
     re-arms itself until [stop] bumps the epoch *)
  let rec beat_loop node epoch () =
    if (not t.stopped) && epoch = t.epoch then begin
      heartbeat t ~node;
      Engine.after engine t.period (beat_loop node epoch)
    end
  in
  let rec monitor_loop epoch () =
    if (not t.stopped) && epoch = t.epoch then begin
      monitor t;
      Engine.after engine t.period (monitor_loop epoch)
    end
  in
  for node = 0 to nnodes - 1 do
    Engine.after engine (1 + node) (beat_loop node t.epoch)
  done;
  Engine.after engine (t.period + (t.period / 2)) (monitor_loop t.epoch);
  t

let set_on_dead t f = t.on_dead <- f

let set_on_alive t f = t.on_alive <- f

let stop t =
  t.stopped <- true;
  t.epoch <- t.epoch + 1

let status t node = t.statuses.(node)

let is_dead t node = t.statuses.(node) = Dead

let period t = t.period

let lowest_live t =
  let rec go i =
    if i >= t.nnodes then
      invalid_arg "Liveness.lowest_live: every node is dead"
    else if t.statuses.(i) <> Dead then i
    else go (i + 1)
  in
  go 0

let deaths t = Stats.Counter.get t.c_deaths

let revivals t = Stats.Counter.get t.c_revivals

let stats t = t.counters

let summary t =
  let buf = Buffer.create 64 in
  let listed status label =
    let members =
      List.filter (fun n -> t.statuses.(n) = status)
        (List.init t.nnodes Fun.id)
    in
    if members <> [] then begin
      if Buffer.length buf > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf label;
      Buffer.add_string buf " [";
      Buffer.add_string buf
        (String.concat ";" (List.map string_of_int members));
      Buffer.add_string buf "]"
    end
  in
  let alive = Array.fold_left (fun n s -> if s = Alive then n + 1 else n) 0 t.statuses in
  Buffer.add_string buf (Printf.sprintf "%d/%d alive" alive t.nnodes);
  listed Suspected "suspected";
  listed Dead "dead";
  Buffer.contents buf
