(** User-level reliable delivery over an unreliable fabric.

    Tempest's thesis is that policy — including reliability policy — lives
    in user software.  This module is that policy: a sequence-numbered,
    cumulative-ack, retransmit-with-backoff transport layered above the raw
    {!Fabric} (optionally behind a {!Faults} injector), in the shape of the
    user-level DSM transports built over unreliable interconnects.

    Under [Perfect] the module is an exact pass-through to {!Fabric} —
    same calls, same event schedule, bit-identical simulations.  Under
    [Flaky cfg] every remote message is stamped with a per-(src,dst)-pair
    sequence number, queued until the peer's cumulative ack covers it, and
    retransmitted on timeout with exponential backoff; receivers suppress
    duplicates and reassemble in order through a bounded window.  Acks
    piggyback on any reverse-pair traffic and are emitted standalone after a
    short idle delay.  A link that makes no progress for [max_retries]
    consecutive timeouts raises {!Link_failed}, so a dead (e.g. 100%-drop)
    network terminates the run instead of hanging.

    Sequencing is per (src,dst) {e pair}, spanning both virtual networks —
    deliberately stronger than per-(src,dst,vnet): the raw fabric's
    constant latency preserves pair FIFO across vnets, and Stache depends
    on it (a data grant on the response net followed by an invalidation on
    the request net must not be reordered).  Fault {e rates} remain
    per-vnet via {!Faults.config}.  Node-to-self messages short-circuit the
    network (§5.1) and are neither faulted nor sequenced. *)

type policy = Perfect | Flaky of Faults.config

exception Link_failed of string
(** A channel exhausted its retry budget with no ack progress. *)

type t

val create :
  ?base_rto:int -> ?rto_cap:int -> ?max_retries:int -> ?ack_delay:int ->
  ?window:int -> Tt_sim.Engine.t -> Fabric.t -> policy -> t
(** Transport tuning (Flaky only): [base_rto] initial retransmit timeout
    (default 24×latency), [rto_cap] backoff ceiling (default 64×base_rto),
    [max_retries] consecutive no-progress timeouts before {!Link_failed}
    (default 10), [ack_delay] idle delay before a standalone ack (default
    2×latency), [window] per-pair reassembly window (default 512).

    Under [Flaky], installs itself as every node's fabric receiver; the
    machine's real receivers must then be registered via {!set_receiver}. *)

val policy : t -> policy

val send : t -> at:int -> Message.t -> unit
(** Drop-in replacement for {!Fabric.send}. *)

val set_receiver : t -> node:int -> (Message.t -> unit) -> unit
(** Drop-in replacement for {!Fabric.set_receiver}; under [Flaky] the
    callback sees exactly-once, per-pair in-order messages. *)

val stats : t -> Tt_util.Stats.t
(** Counters (Flaky only): [reliable.data_sent], [reliable.retransmits],
    [reliable.acks_sent], [reliable.dup_dropped], [reliable.window_drops]. *)

val fault_stats : t -> Tt_util.Stats.t option
(** The wrapped {!Faults} injector's counters (None under [Perfect]). *)

val retransmits : t -> int
(** Total retransmitted messages so far — the watchdog's progress budget. *)

val faults : t -> Faults.t option
(** The wrapped {!Faults} injector itself (None under [Perfect]) — the
    torture harness taps it to record, mask, and replay fault decisions. *)
