(** User-level reliable delivery over an unreliable fabric.

    Tempest's thesis is that policy — including reliability policy — lives
    in user software.  This module is that policy: a sequence-numbered,
    cumulative-ack, retransmit-with-backoff transport layered above the raw
    {!Fabric} (optionally behind a {!Faults} injector), in the shape of the
    user-level DSM transports built over unreliable interconnects.

    Under [Perfect] the module is an exact pass-through to {!Fabric} —
    same calls, same event schedule, bit-identical simulations.  Under
    [Flaky cfg] every remote message is stamped with a per-(src,dst)-pair
    sequence number, queued until the peer's cumulative ack covers it, and
    retransmitted on timeout with exponential backoff; receivers suppress
    duplicates and reassemble in order through a bounded window.  Acks
    piggyback on any reverse-pair traffic and are emitted standalone after a
    short idle delay.  A link that makes no progress for [max_retries]
    consecutive timeouts raises {!Link_failed}, so a dead (e.g. 100%-drop)
    network terminates the run instead of hanging.

    Sequencing is per (src,dst) {e pair}, spanning both virtual networks —
    deliberately stronger than per-(src,dst,vnet): the raw fabric's
    constant latency preserves pair FIFO across vnets, and Stache depends
    on it (a data grant on the response net followed by an invalidation on
    the request net must not be reordered).  Fault {e rates} remain
    per-vnet via {!Faults.config}.  Node-to-self messages short-circuit the
    network (§5.1) and are neither faulted nor sequenced. *)

type policy = Perfect | Flaky of Faults.config

exception Link_failed of string
(** A channel exhausted its retry budget with no ack progress. *)

exception Peer_dead of string
(** The liveness protocol ({!set_liveness}) declared the destination dead
    and no recovery layer is listening ({!set_death_notice} unset): the
    prompt, diagnosed notification that replaces a full retransmission
    storm.  With a recovery layer installed the channel parks instead. *)

val liveness_handler : int
(** Reserved transport handler id ([-2], next to the ack handler's [-1])
    for out-of-band liveness heartbeats: unsequenced, consumed inside the
    transport ({!set_liveness_receiver}), never delivered to the
    application receiver — the liveness protocol's own logical channel. *)

type t

val create :
  ?base_rto:int -> ?rto_cap:int -> ?max_retries:int -> ?ack_delay:int ->
  ?window:int -> Tt_sim.Engine.t -> Fabric.t -> policy -> t
(** Transport tuning (Flaky only): [base_rto] initial retransmit timeout
    (default 24×latency), [rto_cap] backoff ceiling (default 64×base_rto),
    [max_retries] consecutive no-progress timeouts before {!Link_failed}
    (default 10), [ack_delay] idle delay before a standalone ack (default
    2×latency), [window] per-pair reassembly window (default 512).

    Under [Flaky], installs itself as every node's fabric receiver; the
    machine's real receivers must then be registered via {!set_receiver}. *)

val policy : t -> policy

val send : t -> at:int -> Message.t -> unit
(** Drop-in replacement for {!Fabric.send}. *)

val set_receiver : t -> node:int -> (Message.t -> unit) -> unit
(** Drop-in replacement for {!Fabric.set_receiver}; under [Flaky] the
    callback sees exactly-once, per-pair in-order messages. *)

val send_oob : t -> at:int -> Message.t -> unit
(** Out-of-band send for liveness heartbeats: unsequenced, unacked, never
    retransmitted, and exempt from the fault model's PRNG
    ({!Faults.send_oob}) — but still swallowed when the source is inside a
    crash-stop window.  Under [Perfect] it is a plain {!Fabric.send}. *)

val set_liveness : t -> is_dead:(int -> bool) -> unit
(** Install the user-level liveness verdict.  Retransmit timers and new
    sends consult it: a channel whose destination is declared dead parks
    (keeping its unacked queue) instead of burning retries — converting a
    retransmission storm into either a {!Peer_dead} raise or a
    {!set_death_notice} callback.  Flaky only. *)

val set_death_notice : t -> (src:int -> dst:int -> unit) option -> unit
(** When set, a dead-peer encounter parks the channel and invokes the
    callback instead of raising {!Peer_dead} — the hook the recovery layer
    uses to take over.  Flaky only. *)

val set_liveness_receiver : t -> (Message.t -> unit) -> unit
(** Consumer for arriving {!liveness_handler} messages (the transport
    releases each message after the callback returns).  Flaky only. *)

val on_peer_death : t -> node:int -> unit
(** Park every channel toward [node] now (verdict notification): cancel
    retransmit timers, keep unacked queues for a possible rejoin.  No-op
    under [Perfect]. *)

val on_peer_alive : t -> node:int -> unit
(** Revive channels in both directions after [node]'s heartbeats resume:
    reset backoff and replay held queues.  Replays count as
    [reliable.rejoin_retransmits], never against the watchdog's
    [reliable.retransmits] budget.  No-op under [Perfect]. *)

val scrub_unacked : t -> node:int -> handler:int -> int
(** Neutralize every held message touching [node]: rewrite the handler id
    of unacked-queue and reassembly-table residents in both directions to
    [handler] (a recovery-registered no-op), preserving sequence numbers so
    replayed queues keep per-pair ordering intact.  Called by the recovery
    layer at the death verdict (survivors' queues toward the victim hold
    stale grants and invalidations) and again at rejoin (the victim's own
    held queues hold pre-crash-era requests and data).  Returns the number
    of messages scrubbed; [0] under [Perfect].
    @raise Invalid_argument for a negative (transport-internal) handler. *)

val nodes : t -> int
(** Fabric size (node count). *)

val latency : t -> int
(** The wrapped fabric's hop latency (cycles). *)

val stats : t -> Tt_util.Stats.t
(** Counters (Flaky only): [reliable.data_sent], [reliable.retransmits],
    [reliable.acks_sent], [reliable.dup_dropped], [reliable.window_drops],
    [reliable.rejoin_retransmits]. *)

val fault_stats : t -> Tt_util.Stats.t option
(** The wrapped {!Faults} injector's counters (None under [Perfect]). *)

val retransmits : t -> int
(** Total retransmitted messages so far — the watchdog's progress budget. *)

val faults : t -> Faults.t option
(** The wrapped {!Faults} injector itself (None under [Perfect]) — the
    torture harness taps it to record, mask, and replay fault decisions. *)
