type vnet = Request | Response

let vnet_to_string = function Request -> "request" | Response -> "response"

(* Fields are mutable so the transport can stamp seq/ack in place and the
   pool can rewrite a recycled record instead of allocating a new one.
   [pool_rc] is the ownership word: -1 = ordinary message (never pooled;
   release/retain are no-ops), >= 1 = live pooled message with that many
   owners, 0 = sitting in a freelist. *)
type t = {
  mutable src : int;
  mutable dst : int;
  mutable vnet : vnet;
  mutable handler : int;
  mutable args : int array;
  mutable data : Bytes.t;
  mutable seq : int;
  mutable ack : int;
  mutable pool_rc : int;
}

let max_payload_words = 20

let words t = 1 + Array.length t.args + ((Bytes.length t.data + 3) / 4)

let check_words m =
  let w = words m in
  if w > max_payload_words then
    invalid_arg
      (Printf.sprintf "Message.make: %d words exceeds the %d-word packet limit"
         w max_payload_words)

let make ~src ~dst ~vnet ~handler ?(args = [||]) ?(data = Bytes.empty)
    ?(seq = -1) ?(ack = -1) () =
  let m = { src; dst; vnet; handler; args; data; seq; ack; pool_rc = -1 } in
  check_words m;
  m

let dummy = make ~src:0 ~dst:0 ~vnet:Request ~handler:(-1) ()

module Pool = struct
  (* Freelists are bucketed by (virtual network, argument arity) so a
     recycled record's args array is always exactly the right size and the
     two vnets never contend for each other's messages (the paper's
     deadlock argument keeps the nets independent; the pools follow).
     Each bucket is a grow-only array used as a stack: push/pop allocate
     nothing in steady state.

     Buckets and scratch arrays are domain-local (Domain.DLS): under the
     domains-parallel harness several independent simulations (or fabric
     partitions) run concurrently, and a shared freelist would be both a
     data race and a cross-run coupling.  Each domain gets its own
     freelists; a message released on a different domain than it was
     acquired on simply lands in the releasing domain's freelist, which is
     harmless imbalance, never corruption. *)

  let max_args = max_payload_words - 1 (* handler word leaves 19 arg slots *)

  let bucket_cap = 512 (* freelist bound per bucket; beyond it, let the GC *)

  type bucket = { mutable items : t array; mutable len : int }

  let nbuckets = 2 * (max_args + 1)

  let buckets_key =
    Domain.DLS.new_key (fun () ->
        Array.init nbuckets (fun _ -> { items = [||]; len = 0 }))

  let buckets () = Domain.DLS.get buckets_key

  let bucket_index vnet nargs =
    (match vnet with Request -> 0 | Response -> max_args + 1) + nargs

  let disabled =
    ref
      (match Sys.getenv_opt "TT_POOL_DISABLE" with
      | Some ("1" | "true") -> true
      | Some _ | None -> false)

  let set_disabled b = disabled := b

  let is_disabled () = !disabled

  (* Shared scratch argument arrays, one per arity.  A send site fills the
     scratch of its arity and passes it to [acquire], which copies the
     values into the pooled message synchronously — so the scratch is free
     for reuse as soon as acquire returns, and no [| ... |] literal is
     allocated per send. *)
  let scratch_key =
    Domain.DLS.new_key (fun () ->
        Array.init (max_args + 1) (fun n -> Array.make n 0))

  let scratch n =
    if n < 0 || n > max_args then
      invalid_arg (Printf.sprintf "Message.Pool.scratch: bad arity %d" n);
    (Domain.DLS.get scratch_key).(n)

  let grow b seed =
    let cap = Array.length b.items in
    let ncap = if cap = 0 then 16 else 2 * cap in
    let items = Array.make ncap seed in
    Array.blit b.items 0 items 0 b.len;
    b.items <- items

  (* The all-labelled core: optional arguments are a hidden allocation —
     the *call site* boxes every supplied value in [Some] — so the
     steady-state send path must go through a signature with none. *)
  let acquire_full ~src ~dst ~vnet ~handler ~args ~data ~seq ~ack =
    let nargs = Array.length args in
    if !disabled || nargs > max_args then
      (* unpooled fallback: must still copy [args], the caller may be
         handing us a scratch array it will refill for its next send *)
      make ~src ~dst ~vnet ~handler ~args:(Array.copy args) ~data ~seq ~ack ()
    else begin
      let b = (buckets ()).(bucket_index vnet nargs) in
      if b.len = 0 then begin
        let m =
          { src; dst; vnet; handler; args = Array.copy args; data; seq; ack;
            pool_rc = 1 }
        in
        check_words m;
        m
      end
      else begin
        b.len <- b.len - 1;
        let m = b.items.(b.len) in
        m.src <- src;
        m.dst <- dst;
        m.vnet <- vnet;
        m.handler <- handler;
        Array.blit args 0 m.args 0 nargs;
        m.data <- data;
        m.seq <- seq;
        m.ack <- ack;
        m.pool_rc <- 1;
        check_words m;
        m
      end
    end

  let acquire_raw ~src ~dst ~vnet ~handler ~args ~data =
    acquire_full ~src ~dst ~vnet ~handler ~args ~data ~seq:(-1) ~ack:(-1)

  let acquire ~src ~dst ~vnet ~handler ?(args = [||]) ?(data = Bytes.empty)
      ?(seq = -1) ?(ack = -1) () =
    acquire_full ~src ~dst ~vnet ~handler ~args ~data ~seq ~ack

  let retain m =
    if m.pool_rc = 0 then
      invalid_arg "Message.Pool.retain: message is in the freelist"
    else if m.pool_rc > 0 then m.pool_rc <- m.pool_rc + 1
  (* pool_rc < 0: ordinary message, ownership is the GC's problem *)

  let release m =
    if m.pool_rc = 0 then
      invalid_arg "Message.Pool.release: message released twice"
    else if m.pool_rc > 0 then begin
      m.pool_rc <- m.pool_rc - 1;
      if m.pool_rc = 0 then begin
        let nargs = Array.length m.args in
        m.data <- Bytes.empty (* drop the payload reference either way *);
        if Tt_util.Debug.pool_debug () then begin
          (* poison so a handler that stashed the message reads nonsense
             deterministically instead of the next send's fields *)
          m.src <- min_int;
          m.dst <- min_int;
          m.handler <- min_int;
          m.seq <- min_int;
          m.ack <- min_int;
          Array.fill m.args 0 nargs min_int
        end;
        let b = (buckets ()).(bucket_index m.vnet nargs) in
        if b.len < bucket_cap then begin
          if b.len = Array.length b.items then grow b m;
          b.items.(b.len) <- m;
          b.len <- b.len + 1
        end
        (* over the cap: leave pool_rc = 0 and let the GC take it; it can
           never be released again (rc 0 rejects) *)
      end
    end

  let free_count () =
    Array.fold_left (fun acc b -> acc + b.len) 0 (buckets ())
end
