type vnet = Request | Response

let vnet_to_string = function Request -> "request" | Response -> "response"

type t = {
  src : int;
  dst : int;
  vnet : vnet;
  handler : int;
  args : int array;
  data : Bytes.t;
  seq : int;
  ack : int;
}

let max_payload_words = 20

let words t = 1 + Array.length t.args + ((Bytes.length t.data + 3) / 4)

let make ~src ~dst ~vnet ~handler ?(args = [||]) ?(data = Bytes.empty)
    ?(seq = -1) ?(ack = -1) () =
  let m = { src; dst; vnet; handler; args; data; seq; ack } in
  let w = words m in
  if w > max_payload_words then
    invalid_arg
      (Printf.sprintf "Message.make: %d words exceeds the %d-word packet limit"
         w max_payload_words);
  m
