(** User-level failure detection: a lease/heartbeat protocol on its own
    logical channel.

    Tempest puts policy in user software; this module is the {e detection}
    policy for crash-stop failures.  Every node broadcasts a heartbeat each
    [period] on the transport's out-of-band liveness channel
    ({!Reliable.liveness_handler}: unsequenced, unacked, fault-PRNG-exempt
    — only crash-stop windows can swallow it).  A monitor declares a peer
    {e dead} once it has been silent longer than [lease_budget × period]
    (and {e suspected} past half that), and feeds the verdict back into
    {!Reliable.set_liveness} so retransmission storms toward dead peers
    become prompt {!Reliable.Peer_dead} notifications (or recovery-layer
    callbacks).  A declared-dead peer whose heartbeats resume is flipped
    back to alive — the rejoin path.

    Because the out-of-band channel bypasses the fault PRNG and the fabric
    latency is constant, every live observer hears each heartbeat at the
    same cycle, so the per-observer suspicion matrices of a real gossip
    protocol collapse into one agreed, deterministic system-wide verdict
    (documented as a modelling simplification in DESIGN.md §6).

    The heartbeat and monitor loops re-arm themselves forever, which would
    keep the event queue from draining: call {!stop} when the application
    finishes (the recovery harness does this from the last-finishing SPMD
    thread). *)

type status = Alive | Suspected | Dead

val status_to_string : status -> string

type t

val create :
  ?period:int -> ?lease_budget:int -> Tt_sim.Engine.t -> Reliable.t -> t
(** Starts the per-node heartbeat loops (staggered one cycle apart) and
    the monitor loop immediately.  [period] defaults to 32× the fabric
    latency; [lease_budget] (missed periods before a death verdict)
    defaults to 4.  Also installs itself as the transport's liveness
    receiver and verdict ({!Reliable.set_liveness_receiver} /
    {!Reliable.set_liveness}).
    @raise Invalid_argument under a [Perfect] transport, or on a
    non-positive period or a lease budget below 2. *)

val set_on_dead : t -> (int -> unit) -> unit
(** Hook fired once per death verdict, with the dead node's rank. *)

val set_on_alive : t -> (int -> unit) -> unit
(** Hook fired when a declared-dead node's heartbeats resume. *)

val stop : t -> unit
(** Stop both loops (the already-scheduled next events fire once and
    expire).  Verdict state stays queryable. *)

val status : t -> int -> status

val is_dead : t -> int -> bool

val lowest_live : t -> int
(** Deterministic election: the lowest rank not declared dead.
    @raise Invalid_argument if every node is dead. *)

val period : t -> int

val deaths : t -> int
(** Death verdicts fired so far. *)

val revivals : t -> int
(** Rejoin verdicts fired so far. *)

val summary : t -> string
(** One-line census for watchdog diagnostics, e.g.
    ["7/8 alive, dead [3]"]. *)

val stats : t -> Tt_util.Stats.t
(** Counters: [liveness.heartbeats], [liveness.deaths],
    [liveness.revivals]. *)
