(** Credit-based end-to-end flow control with the §5.1 overflow path.

    Typhoon's network interface has finite buffering; §5.1 describes the
    escape hatch: when the network (or the receiver) cannot absorb a send,
    the message is redirected into a user-level overflow buffer and a
    status handler later drains it.  This module models that machinery as
    credit-based backpressure per (src, dst, virtual network):

    - each pair×vnet starts with a configured number of credits; a direct
      send consumes one, and the credit returns when the receiver's NP
      {e finishes executing} the message's handler (end-to-end, not
      link-level);
    - a sender out of credits {e parks} the message: a CPU-side sender
      blocks its thread ({!Tt_sim.Thread.await_unit}) until the message
      drains; a handler-side sender — which must run to completion and can
      never block — spills into the node's bounded overflow buffer
      instead;
    - returning credits post a {e drain chore} on the parked sender's NP
      (§5.1's second-level status-handler dispatch), which releases parked
      messages in order, wakes blocked threads, and finally reports the
      remaining backlog to the node's registered status handler;
    - the response vnet has its own credit pool, so parked responses never
      wait on request credits and the NP's response-first priority (the
      deadlock-avoidance argument of §5.1) survives parking: parked
      responses may overtake parked requests, never the reverse.

    Cross-vnet ordering: the {!Reliable} transport sequences both vnets of
    a (src,dst) pair in send order, and the coherence layers above rely on
    it (data before invalidation).  Parking preserves that order for
    everything except the response-overtakes-request case, which is
    exactly the reordering the NP dispatch priority already performs.

    When even the overflow buffer is full, the send raises
    {!Overload.Overload} with a diagnostic naming the node, its per-pair
    occupancies and credit levels, and the transport's outstanding
    retransmissions — never a silent hang.

    {2 Kill switch and timing parity}

    [TT_FLOW=0] (or [false]/[off]) in the environment disables the layer
    ({!enabled} becomes false); systems then send straight to the
    transport with no capacity checks, reproducing the pre-flow-control
    behaviour bit for bit.  With the layer on but credits ample (the
    defaults: more credits than the transport's send window can ever use),
    every send takes the direct path, which is pure integer bookkeeping —
    no events, no charges, no allocation — so pinned simulated-cycle rows
    are identical to [TT_FLOW=0].  [bench/main.ml] hard-asserts this
    ([flowcontrol_timing_parity]), and [scripts/check_flowcontrol.sh] runs
    the whole suite both ways. *)

val set_enabled : bool -> unit
(** Override the [TT_FLOW] environment default (tests use this to compare
    both behaviours in one process). *)

val enabled : unit -> bool

type t

val create :
  Reliable.t ->
  nodes:int ->
  request_credits:int ->
  response_credits:int ->
  spill_capacity:int ->
  spill_cost:int ->
  drain_cost:int ->
  status_cost:int ->
  unit ->
  t
(** Credits are per (src,dst,vnet); [spill_capacity] bounds each node's
    overflow buffer (total parked handler-side messages, all destinations).
    The three costs are NP occupancy charges: per spilled message, per
    drained message, and per drain-chore dispatch.
    @raise Invalid_argument on non-positive credits or node count. *)

val set_hooks :
  t ->
  post:(int -> (unit -> unit) -> unit) ->
  clock:(int -> int) ->
  charge:(int -> int -> unit) ->
  status:(int -> pending:int -> unit) ->
  unit
(** Install the machine hooks (once, after the NPs exist): [post node
    chore] schedules a drain chore on [node]'s NP; [clock node] is the
    node's NP-local time (drained messages enter the wire at it); [charge
    node c] charges [c] cycles of NP occupancy; [status node ~pending]
    invokes the node's user-registered status handler after a drain. *)

val send_from_handler : t -> at:int -> Message.t -> unit
(** Send from NP handler context (run-to-completion — cannot block).  Out
    of credits, the message spills into the node's overflow buffer.
    @raise Overload.Overload when the overflow buffer is full. *)

val send_from_cpu : t -> at:int -> Tt_sim.Thread.t -> Message.t -> unit
(** Send from a CPU thread.  Out of credits, the thread parks until the
    drain chore releases the message — the caller resumes after the
    message is on the wire.  Callers must not hold NP state across the
    suspension. *)

val credit_return : t -> src:int -> dst:int -> Message.vnet -> unit
(** The receiver's NP finished a message from [src]; its credit returns.
    Posts a drain chore on [src] iff the returning credit makes a parked
    message releasable (ample credits never schedule anything). *)

val set_remote :
  t ->
  owner:(int -> bool) ->
  forward:(src:int -> dst:int -> Message.vnet -> unit) ->
  unit
(** Partitioned-fabric glue (see [Tt_net.Fabric.set_partition]): a
    {!credit_return} whose [src] fails the [owner] predicate is routed
    through [forward] — typically a [Tt_sim.Domains.post] to the source
    partition, whose own Flow instance holds that sender's credit pool —
    instead of touching this instance's state. *)

val deadlock : t -> string option
(** Probe the waits-for graph: an edge src→dst exists when src has parked
    traffic for dst that is not currently releasable.  Returns a rendered
    cycle ("waits-for cycle 0 -> 2 -> 0 (…occupancies…)") or [None].
    Meaningful only across a window with no delivered progress — see
    {!Tt_harness.Watchdog}; transient cycles that in-flight credit
    returns are about to break are the caller's to filter. *)

val node_queued : t -> int -> int
(** Parked messages (blocked + spilled) originating at a node. *)

val node_spilled : t -> int -> int
(** Handler-side spilled messages currently parked at a node. *)

val peak_queued : t -> int
(** High-water mark of any single node's parked count. *)

val credit_level : t -> src:int -> dst:int -> Message.vnet -> int

val describe : t -> string
(** Occupancy summary of every node with parked traffic (for watchdog
    [Expired] diagnostics). *)

val describe_node : t -> int -> string

val stats : t -> Tt_util.Stats.t
(** Counters: [flow.blocked] (CPU senders parked), [flow.spilled]
    (handler sends redirected to the overflow buffer), [flow.drained]
    (parked messages released), [flow.drain_chores] (status dispatches),
    [flow.peak_queued]. *)
