module Stats = Tt_util.Stats

(* In-flight messages are held in a second int-keyed heap mirroring the
   engine's packed [(time, seq)] key, and one preallocated delivery closure
   is scheduled per send.  When the k-th delivery event fires it pops the
   k-th smallest inflight entry: both the engine queue and [inflight] sort
   by (time, monotone insertion seq), so event and message pair up exactly
   as if each send had captured its message in a fresh closure — but the
   hot path allocates nothing. *)

let seq_bits = 20

let seq_limit = 1 lsl seq_bits

type t = {
  engine : Tt_sim.Engine.t;
  node_count : int;
  net_latency : int;
  local_latency : int;
  capacity : int; (* max messages in flight; [max_int] = unbounded *)
  words_per_cycle : int option;
  port_free : int array; (* contention model: next free time per dst port *)
  receivers : (Message.t -> unit) option array;
  inflight : Message.t Tt_util.Intheap.t;
  mutable fseq : int;
  mutable deliver_fn : unit -> unit; (* preallocated; set once in [create] *)
  (* Partition routing for the domains-parallel engine: when [local] is
     set, a send whose destination fails the predicate is handed to
     [remote] instead of being scheduled here; the owning partition calls
     [inject] on its own fabric at the arrival time. *)
  mutable local : (int -> bool) option;
  mutable remote : (at:int -> Message.t -> unit) option;
  counters : Stats.t;
  (* per-message counters, pre-resolved so [send] never builds key strings *)
  c_msgs_request : Stats.counter;
  c_msgs_response : Stats.counter;
  c_words_request : Stats.counter;
  c_words_response : Stats.counter;
  c_msgs_local : Stats.counter;
  c_port_wait : Stats.counter;
}

let deliver t =
  let msg = Tt_util.Intheap.pop_exn t.inflight in
  if Tt_util.Intheap.is_empty t.inflight then t.fseq <- 0;
  match t.receivers.(msg.Message.dst) with
  | Some receive -> receive msg
  | None ->
      (* this fires inside the delivery event, long after the send call
         site — name the message so the offender is diagnosable *)
      invalid_arg
        (Printf.sprintf
           "Fabric: node %d has no receiver (message src=%d dst=%d \
            handler=%d vnet=%s)"
           msg.Message.dst msg.Message.src msg.Message.dst msg.Message.handler
           (Message.vnet_to_string msg.Message.vnet))

let create engine ~nodes ~latency ?(local_latency = 1) ?words_per_cycle
    ?(capacity = max_int) () =
  if nodes <= 0 then invalid_arg "Fabric.create";
  (match words_per_cycle with
  | Some w when w <= 0 -> invalid_arg "Fabric.create: bad bandwidth"
  | Some _ | None -> ());
  if capacity <= 0 then invalid_arg "Fabric.create: bad capacity";
  let counters = Stats.create "network" in
  let t =
    { engine; node_count = nodes; net_latency = latency; local_latency;
      capacity; words_per_cycle; port_free = Array.make nodes 0;
      receivers = Array.make nodes None;
      inflight = Tt_util.Intheap.create ~capacity:64 ~dummy:Message.dummy ();
      fseq = 0;
      deliver_fn = (fun () -> ());
      local = None;
      remote = None;
      counters;
      c_msgs_request = Stats.counter counters "msgs.request";
      c_msgs_response = Stats.counter counters "msgs.response";
      c_words_request = Stats.counter counters "words.request";
      c_words_response = Stats.counter counters "words.response";
      c_msgs_local = Stats.counter counters "msgs.local";
      c_port_wait = Stats.counter counters "port_wait_cycles" }
  in
  t.deliver_fn <- (fun () -> deliver t);
  t

let nodes t = t.node_count

let latency t = t.net_latency

let stats t = t.counters

let set_receiver t ~node f =
  if node < 0 || node >= t.node_count then invalid_arg "Fabric.set_receiver";
  t.receivers.(node) <- Some f

let set_partition t ~local ~remote =
  (* the port-contention model serializes through per-node port clocks that
     a split fabric cannot share deterministically *)
  if t.words_per_cycle <> None then
    invalid_arg
      "Fabric.set_partition: incompatible with the words_per_cycle \
       contention model";
  t.local <- Some local;
  t.remote <- Some remote

(* Renumber inflight entries 0..n-1 in drain order (see Engine.rebase). *)
let rebase_inflight t =
  let n = Tt_util.Intheap.length t.inflight in
  let keys = Array.make n 0 and msgs = Array.make n Message.dummy in
  for i = 0 to n - 1 do
    keys.(i) <- Tt_util.Intheap.min_key t.inflight;
    msgs.(i) <- Tt_util.Intheap.pop_exn t.inflight
  done;
  for i = 0 to n - 1 do
    Tt_util.Intheap.push t.inflight
      (((keys.(i) asr seq_bits) lsl seq_bits) lor i)
      msgs.(i)
  done;
  t.fseq <- n

let schedule_delivery t deliver_at msg =
  if t.fseq >= seq_limit then rebase_inflight t;
  (* schedule first: if [Engine.at] rejects the time we must not leave a
     stale inflight entry behind *)
  Tt_sim.Engine.at t.engine deliver_at t.deliver_fn;
  Tt_util.Intheap.push t.inflight ((deliver_at lsl seq_bits) lor t.fseq) msg;
  t.fseq <- t.fseq + 1

let send t ~at msg =
  (* validate both endpoints up front: a bad [src] would otherwise index
     [port_free] out of bounds in bandwidth mode and pass silently in
     latency mode *)
  if msg.Message.src < 0 || msg.Message.src >= t.node_count then
    invalid_arg
      (Printf.sprintf "Fabric.send: bad source %d (fabric has %d nodes)"
         msg.Message.src t.node_count);
  if msg.Message.dst < 0 || msg.Message.dst >= t.node_count then
    invalid_arg
      (Printf.sprintf "Fabric.send: bad destination %d (fabric has %d nodes)"
         msg.Message.dst t.node_count);
  if Tt_util.Intheap.length t.inflight >= t.capacity then
    raise
      (Overload.Overload
         (Printf.sprintf
            "Fabric: in-flight buffer full (%d messages, capacity %d) \
             sending src=%d dst=%d vnet=%s at t=%d"
            (Tt_util.Intheap.length t.inflight)
            t.capacity msg.Message.src msg.Message.dst
            (Message.vnet_to_string msg.Message.vnet)
            at));
  (match msg.Message.vnet with
  | Message.Request ->
      Stats.Counter.incr t.c_msgs_request;
      Stats.Counter.add t.c_words_request (Message.words msg)
  | Message.Response ->
      Stats.Counter.incr t.c_msgs_response;
      Stats.Counter.add t.c_words_response (Message.words msg));
  let lat =
    if msg.Message.src = msg.Message.dst then begin
      Stats.Counter.incr t.c_msgs_local;
      t.local_latency
    end
    else t.net_latency
  in
  let deliver_at =
    match t.words_per_cycle with
    | None -> max (at + lat) (Tt_sim.Engine.now t.engine)
    | Some w ->
        (* serialize through the sender's and the receiver's network port:
           a node streaming many replies (a hot home) queues on the way
           out, and a node bombarded with messages queues on the way in *)
        let occupancy = (Message.words msg + w - 1) / w in
        let depart = max at t.port_free.(msg.Message.src) in
        t.port_free.(msg.Message.src) <- depart + occupancy;
        let arrive =
          max (max (depart + lat) (Tt_sim.Engine.now t.engine))
            t.port_free.(msg.Message.dst)
        in
        t.port_free.(msg.Message.dst) <- arrive + occupancy;
        let waited = (depart - at) + (arrive - (depart + lat)) in
        if waited > 0 then Stats.Counter.add t.c_port_wait waited;
        arrive + occupancy
  in
  match t.local with
  | Some is_local when not (is_local msg.Message.dst) ->
      (* cross-partition: the destination's fabric owns delivery; hand the
         message over at its departure time and let the owner [inject] it *)
      (match t.remote with
      | Some f -> f ~at msg
      | None -> assert false (* set_partition installs both together *))
  | _ -> schedule_delivery t deliver_at msg

(* Arrival handed over from a peer partition's fabric: deliver to the
   (locally owned) destination at absolute time [at], clamped to this
   engine's clock exactly as a local send would be. *)
let inject t ~at msg =
  if msg.Message.dst < 0 || msg.Message.dst >= t.node_count then
    invalid_arg
      (Printf.sprintf "Fabric.inject: bad destination %d (fabric has %d nodes)"
         msg.Message.dst t.node_count);
  schedule_delivery t (max at (Tt_sim.Engine.now t.engine)) msg
