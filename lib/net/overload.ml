exception Overload of string
