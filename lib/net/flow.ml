module Stats = Tt_util.Stats
module Vec = Tt_util.Vec
module Thread = Tt_sim.Thread

(* Credit-based per-(src,dst,vnet) flow control with the §5.1 overflow
   path.  A sender holding a credit hands its message straight to the
   reliable transport; a sender out of credits parks the message in a
   per-pair queue — blocking the calling CPU thread, or spilling from an
   NP handler into the node's bounded overflow buffer.  The receiver's NP
   returns the credit when it finishes executing the message's handler,
   which (after a wire delay) posts a drain chore — the second-level
   status dispatch — on the sender's NP to move parked messages onto the
   network and wake blocked threads.

   Ordering: the reliable transport sequences BOTH vnets per (src,dst)
   pair in send order, which Stache's data/inval ordering depends on.  The
   parked queues must not break that: a parked pair keeps one monotone
   sequence across its two sub-queues, a direct send is refused whenever
   it would overtake a parked message it must stay behind, and a parked
   request drains only when no earlier-parked response remains.  Parked
   responses may overtake parked requests (and fresh responses may
   overtake parked requests) — the same priority the NP dispatch loop
   gives the response network, and the reason the response vnet's separate
   credit pool always retains enough credit to drain (§5.1). *)

let enabled_flag =
  ref
    (match Sys.getenv_opt "TT_FLOW" with
    | Some ("0" | "false" | "off") -> false
    | Some _ | None -> true)

let set_enabled b = enabled_flag := b

let enabled () = !enabled_flag

type item = {
  i_seq : int; (* pair-local park order, spanning both sub-queues *)
  i_msg : Message.t;
  i_wake : (unit -> unit) option; (* [Some] = a blocked CPU sender *)
}

type pair = {
  p_src : int;
  p_dst : int;
  mutable p_seq : int;
  resp_q : item Queue.t;
  req_q : item Queue.t;
}

type t = {
  net : Reliable.t;
  nnodes : int;
  request_credits : int;
  response_credits : int;
  spill_capacity : int;
  spill_cost : int;
  drain_cost : int;
  status_cost : int;
  credits : int array; (* ((src*n)+dst)*2 + vnet index *)
  pairs : pair option array; (* (src*n)+dst, lazily created on pressure *)
  active : int Vec.t array; (* per src: dsts with parked items, park order *)
  in_active : bool array; (* (src*n)+dst: dst present in active.(src) *)
  queued : int array; (* per src: parked items, both kinds *)
  spilled : int array; (* per src: parked items without a waker *)
  drain_posted : bool array;
  chores : (unit -> unit) array; (* preallocated drain chore per node *)
  (* machine hooks, installed by the system after its NPs exist *)
  mutable hook_post : int -> (unit -> unit) -> unit;
  mutable hook_clock : int -> int;
  mutable hook_charge : int -> int -> unit;
  mutable hook_status : int -> pending:int -> unit;
  (* partitioned fabric: credit state for a non-owned [src] lives in the
     source partition's Flow instance; [forward] routes the return there *)
  mutable owner : (int -> bool) option;
  mutable forward : (src:int -> dst:int -> Message.vnet -> unit) option;
  counters : Stats.t;
  c_blocked : Stats.counter;
  c_spilled : Stats.counter;
  c_drained : Stats.counter;
  c_drains : Stats.counter;
  c_peak : Stats.counter;
}

let no_hooks _ = invalid_arg "Flow: machine hooks not installed"

let create net ~nodes ~request_credits ~response_credits ~spill_capacity
    ~spill_cost ~drain_cost ~status_cost () =
  if nodes <= 0 then invalid_arg "Flow.create";
  if request_credits <= 0 || response_credits <= 0 then
    invalid_arg "Flow.create: credits must be positive";
  if spill_capacity < 0 then invalid_arg "Flow.create: bad spill capacity";
  let credits =
    Array.init (nodes * nodes * 2) (fun i ->
        if i land 1 = 0 then request_credits else response_credits)
  in
  let counters = Stats.create "flow" in
  let t =
    {
      net;
      nnodes = nodes;
      request_credits;
      response_credits;
      spill_capacity;
      spill_cost;
      drain_cost;
      status_cost;
      credits;
      pairs = Array.make (nodes * nodes) None;
      active = Array.init nodes (fun _ -> Vec.create ());
      in_active = Array.make (nodes * nodes) false;
      queued = Array.make nodes 0;
      spilled = Array.make nodes 0;
      drain_posted = Array.make nodes false;
      chores = Array.make nodes (fun () -> ());
      hook_post = (fun _ _ -> no_hooks ());
      hook_clock = (fun _ -> no_hooks ());
      hook_charge = (fun _ _ -> no_hooks ());
      hook_status = (fun _ ~pending:_ -> no_hooks ());
      owner = None;
      forward = None;
      counters;
      c_blocked = Stats.counter counters "flow.blocked";
      c_spilled = Stats.counter counters "flow.spilled";
      c_drained = Stats.counter counters "flow.drained";
      c_drains = Stats.counter counters "flow.drain_chores";
      c_peak = Stats.counter counters "flow.peak_queued";
    }
  in
  t

let stats t = t.counters

let node_queued t node = t.queued.(node)

let node_spilled t node = t.spilled.(node)

let peak_queued t = Stats.Counter.get t.c_peak

let vidx = function Message.Request -> 0 | Message.Response -> 1

let cidx t ~src ~dst v = (((src * t.nnodes) + dst) * 2) + vidx v

let credit_level t ~src ~dst v = t.credits.(cidx t ~src ~dst v)

let pair_get t src dst =
  let i = (src * t.nnodes) + dst in
  match t.pairs.(i) with
  | Some p -> p
  | None ->
      let p =
        { p_src = src; p_dst = dst; p_seq = 0; resp_q = Queue.create ();
          req_q = Queue.create () }
      in
      t.pairs.(i) <- Some p;
      p

(* A direct send is refused when out of credit, or when it would overtake a
   parked message it must stay behind: anything already parked for a
   request, any parked response for a response. *)
let must_park t ~src ~dst v =
  t.credits.(cidx t ~src ~dst v) <= 0
  ||
  match t.pairs.((src * t.nnodes) + dst) with
  | None -> false
  | Some p -> (
      match v with
      | Message.Response -> not (Queue.is_empty p.resp_q)
      | Message.Request ->
          not (Queue.is_empty p.resp_q && Queue.is_empty p.req_q))

(* --- occupancy / diagnostics ------------------------------------------ *)

let describe_pair t p b =
  Printf.sprintf "%d->%d parked resp=%d req=%d credits resp=%d/%d req=%d/%d"
    p.p_src p.p_dst (Queue.length p.resp_q) (Queue.length p.req_q)
    (credit_level t ~src:p.p_src ~dst:p.p_dst Message.Response)
    b.response_credits
    (credit_level t ~src:p.p_src ~dst:p.p_dst Message.Request)
    b.request_credits

let describe_node t src =
  let b = Buffer.create 64 in
  Buffer.add_string b
    (Printf.sprintf "node %d: %d parked (%d spilled, spill capacity %d)" src
       t.queued.(src) t.spilled.(src) t.spill_capacity);
  Vec.iter
    (fun dst ->
      match t.pairs.((src * t.nnodes) + dst) with
      | None -> ()
      | Some p ->
          Buffer.add_string b "; ";
          Buffer.add_string b (describe_pair t p t))
    t.active.(src);
  Buffer.contents b

let describe t =
  let b = Buffer.create 64 in
  for src = 0 to t.nnodes - 1 do
    if t.queued.(src) > 0 then begin
      if Buffer.length b > 0 then Buffer.add_string b " | ";
      Buffer.add_string b (describe_node t src)
    end
  done;
  if Buffer.length b = 0 then "no parked senders" else Buffer.contents b

(* --- parking ----------------------------------------------------------- *)

let note_peak t src =
  if t.queued.(src) > Stats.Counter.get t.c_peak then
    Stats.Counter.add t.c_peak (t.queued.(src) - Stats.Counter.get t.c_peak)

let enqueue t ~src ~dst v msg wake =
  let p = pair_get t src dst in
  (* the [in_active] guard (not an emptiness check) prevents a duplicate
     entry when a thread woken inline mid-drain re-parks for a pair whose
     stale vec slot has not been compacted away yet *)
  if not t.in_active.((src * t.nnodes) + dst) then begin
    t.in_active.((src * t.nnodes) + dst) <- true;
    Vec.push t.active.(src) dst
  end;
  let item = { i_seq = p.p_seq; i_msg = msg; i_wake = wake } in
  p.p_seq <- p.p_seq + 1;
  (match v with
  | Message.Response -> Queue.add item p.resp_q
  | Message.Request -> Queue.add item p.req_q);
  t.queued.(src) <- t.queued.(src) + 1;
  note_peak t src

let overflow_diag t src =
  Printf.sprintf
    "Flow: node %d overflow buffer full — %s; %d retransmissions outstanding"
    src (describe_node t src)
    (Reliable.retransmits t.net)

let send_direct t ~at ~src ~dst v msg =
  let ci = cidx t ~src ~dst v in
  t.credits.(ci) <- t.credits.(ci) - 1;
  Reliable.send t.net ~at msg

let send_from_handler t ~at msg =
  let src = msg.Message.src and dst = msg.Message.dst in
  let v = msg.Message.vnet in
  if must_park t ~src ~dst v then begin
    (* §5.1: the handler cannot block; redirect the send into the node's
       user-level overflow buffer, or abort loudly when even that is full *)
    if t.spilled.(src) >= t.spill_capacity then
      raise (Overload.Overload (overflow_diag t src));
    t.hook_charge src t.spill_cost;
    t.spilled.(src) <- t.spilled.(src) + 1;
    Stats.Counter.incr t.c_spilled;
    enqueue t ~src ~dst v msg None
  end
  else send_direct t ~at ~src ~dst v msg

let send_from_cpu t ~at th msg =
  let src = msg.Message.src and dst = msg.Message.dst in
  let v = msg.Message.vnet in
  if must_park t ~src ~dst v then begin
    Stats.Counter.incr t.c_blocked;
    (* cold path: the two closures below allocate, but only when actually
       blocking — the credit-rich direct path allocates nothing *)
    Thread.await_unit th (fun wake ->
        enqueue t ~src ~dst v msg
          (Some
             (fun () ->
               (* the drain runs on the node's NP; the thread resumes no
                  earlier than the NP time its message hit the wire at *)
               Thread.set_clock th
                 (max (Thread.clock th) (t.hook_clock src));
               wake ())))
  end
  else send_direct t ~at ~src ~dst v msg

(* --- draining ---------------------------------------------------------- *)

let drainable_resp t p =
  (not (Queue.is_empty p.resp_q))
  && credit_level t ~src:p.p_src ~dst:p.p_dst Message.Response > 0

(* a parked request drains only when no earlier-parked response remains:
   releasing it past one would reorder the pair's cross-vnet stream *)
let drainable_req t p =
  (not (Queue.is_empty p.req_q))
  && credit_level t ~src:p.p_src ~dst:p.p_dst Message.Request > 0
  && (Queue.is_empty p.resp_q
     || (Queue.peek p.resp_q).i_seq > (Queue.peek p.req_q).i_seq)

let pair_drainable t p = drainable_resp t p || drainable_req t p

let release t p v q =
  let item = Queue.pop q in
  let src = p.p_src in
  let ci = cidx t ~src ~dst:p.p_dst v in
  t.credits.(ci) <- t.credits.(ci) - 1;
  t.queued.(src) <- t.queued.(src) - 1;
  Stats.Counter.incr t.c_drained;
  t.hook_charge src t.drain_cost;
  (* put the message on the wire before waking its sender: the resumed
     thread must observe its send as already done *)
  Reliable.send t.net ~at:(t.hook_clock src) item.i_msg;
  match item.i_wake with
  | Some wake -> wake ()
  | None -> t.spilled.(src) <- t.spilled.(src) - 1

let rec drain_pair t p =
  if drainable_resp t p then begin
    release t p Message.Response p.resp_q;
    drain_pair t p
  end
  else if drainable_req t p then begin
    release t p Message.Request p.req_q;
    drain_pair t p
  end

(* The drain chore, run on the owning node's NP: §5.1's second-level
   dispatch of the overflow status handler. *)
let run_drain t node =
  t.drain_posted.(node) <- false;
  Stats.Counter.incr t.c_drains;
  t.hook_charge node t.status_cost;
  let av = t.active.(node) in
  let kept = ref 0 in
  let keep_or_drop dst =
    match t.pairs.((node * t.nnodes) + dst) with
    | None -> t.in_active.((node * t.nnodes) + dst) <- false
    | Some p ->
        if Queue.is_empty p.resp_q && Queue.is_empty p.req_q then
          t.in_active.((node * t.nnodes) + dst) <- false
        else begin
          Vec.set av !kept dst;
          incr kept
        end
  in
  let n = Vec.length av in
  for i = 0 to n - 1 do
    let dst = Vec.get av i in
    (match t.pairs.((node * t.nnodes) + dst) with
    | None -> ()
    | Some p -> drain_pair t p);
    keep_or_drop dst
  done;
  (* a thread woken inline above may have re-parked for new destinations,
     growing the vec past the snapshot [n]; those entries must survive the
     compaction (they are fresh — nothing to drain for them yet) *)
  for i = n to Vec.length av - 1 do
    keep_or_drop (Vec.get av i)
  done;
  Vec.truncate av !kept;
  t.hook_status node ~pending:t.queued.(node)

let set_hooks t ~post ~clock ~charge ~status =
  t.hook_post <- post;
  t.hook_clock <- clock;
  t.hook_charge <- charge;
  t.hook_status <- status;
  for node = 0 to t.nnodes - 1 do
    t.chores.(node) <- (fun () -> run_drain t node)
  done

let set_remote t ~owner ~forward =
  t.owner <- Some owner;
  t.forward <- Some forward

let credit_return t ~src ~dst vnet =
  match t.owner with
  | Some is_local when not (is_local src) ->
      (* the sender's credit pool lives in its own partition's Flow *)
      (match t.forward with
      | Some f -> f ~src ~dst vnet
      | None -> assert false (* set_remote installs both together *))
  | _ ->
  let ci = cidx t ~src ~dst vnet in
  t.credits.(ci) <- t.credits.(ci) + 1;
  if t.queued.(src) > 0 && not t.drain_posted.(src) then begin
    (* only the (src,dst) pair whose credit just returned can have become
       releasable; post a drain chore only when it actually is, so ample
       credits never schedule an extra event *)
    let releasable =
      match t.pairs.((src * t.nnodes) + dst) with
      | Some p -> pair_drainable t p
      | None -> false
    in
    if releasable then begin
      t.drain_posted.(src) <- true;
      t.hook_post src t.chores.(src)
    end
  end

(* --- deadlock probe ---------------------------------------------------- *)

(* Waits-for edges: src -> dst whenever src has parked traffic for dst that
   is not currently releasable (a releasable pair has a drain chore coming
   and is progress, not waiting).  A cycle means a ring of senders each
   stalled on credits only a stalled peer can return; the watchdog checks
   this probe only across a window with zero delivered progress, so a
   transient cycle that in-flight credits are about to break is not
   reported. *)
let blocked_edge t src dst =
  match t.pairs.((src * t.nnodes) + dst) with
  | None -> false
  | Some p ->
      (not (Queue.is_empty p.resp_q && Queue.is_empty p.req_q))
      && not (pair_drainable t p)

let deadlock t =
  let color = Array.make t.nnodes 0 in
  let parent = Array.make t.nnodes (-1) in
  let cycle = ref None in
  let rec dfs u =
    color.(u) <- 1;
    Vec.iter
      (fun v ->
        if !cycle = None && blocked_edge t u v then
          if color.(v) = 0 then begin
            parent.(v) <- u;
            dfs v
          end
          else if color.(v) = 1 then begin
            let rec back acc w =
              let acc = w :: acc in
              if w = v then acc else back acc parent.(w)
            in
            cycle := Some (back [ v ] u)
          end)
      t.active.(u);
    color.(u) <- 2
  in
  for u = 0 to t.nnodes - 1 do
    if color.(u) = 0 && !cycle = None then dfs u
  done;
  match !cycle with
  | None -> None
  | Some nodes ->
      Some
        (Printf.sprintf "waits-for cycle %s (%s)"
           (String.concat " -> " (List.map string_of_int nodes))
           (String.concat "; "
              (List.filter_map
                 (fun src ->
                   if t.queued.(src) > 0 then Some (describe_node t src)
                   else None)
                 nodes)))
