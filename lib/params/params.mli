(** Simulation cost parameters — the code form of the paper's Table 2.

    Every latency the two target systems charge comes from this record, so
    the mapping from the paper's constants to the simulator is one-to-one
    and unit-testable.  Defaults are exactly Table 2 (loosely based on the
    DASH prototype, 32 processing nodes). *)

type t = {
  nodes : int;  (** 32 processing nodes *)
  (* --- common --- *)
  cpu_cache_bytes : int;  (** Figure 3 sweeps 4 K … 256 K *)
  cpu_cache_assoc : int;  (** 4-way, random replacement *)
  cpu_tlb_entries : int;  (** 64-entry, fully assoc., FIFO *)
  tlb_miss : int;  (** 25 cycles *)
  local_miss : int;  (** 29 cycles *)
  local_writeback : int;  (** 0 — perfect write buffer *)
  upgrade : int;
      (** write hit on an unowned (Shared) line: bus invalidate transaction.
          Not in Table 2; modelled as 5 cycles (a short bus transaction). *)
  net_latency : int;  (** 11 cycles *)
  barrier_latency : int;  (** 11 cycles *)
  (* --- DirNNB only --- *)
  remote_miss_base : int;  (** 23 cycles before the request leaves *)
  remote_miss_finish : int;  (** 34 cycles after the response arrives *)
  repl_shared : int;  (** 5 cycles when the victim line is shared *)
  repl_exclusive : int;  (** 16 cycles when the victim line is exclusive *)
  remote_inval : int;  (** 8 cycles per remote cache invalidate *)
  dir_op : int;  (** 16 cycles per directory operation *)
  dir_block_recv : int;  (** +11 if a block is received *)
  dir_per_msg : int;  (** +5 per message sent *)
  dir_block_send : int;  (** +11 if a block is sent *)
  (* --- Typhoon only --- *)
  np_tlb_entries : int;  (** NP TLB and RTLB: 64-entry FA FIFO *)
  np_tlb_miss : int;  (** 25 cycles *)
  np_dcache_bytes : int;  (** 16 KB *)
  np_dcache_assoc : int;  (** 2-way *)
  np_dcache_miss : int;
      (** NP data-cache miss = a local memory access, 29 cycles *)
  fault_detect : int;
      (** cycles for the CPU's inhibited bus transaction ("relinquish and
          retry") that turns a denied access into a block access fault.
          Not in Table 2; modelled as 10 cycles. *)
  stache_max_pages : int option;
      (** cap on stache pages per node; [None] = all of local memory *)
  dir_limited_pointers : int option;
      (** DirNNB ablation: [Some i] keeps at most [i] precise sharer
          pointers per block and falls back to broadcast invalidation on
          overflow (Dir_i B); [None] (default) is the paper's full-map
          no-broadcast directory. *)
  link_words_per_cycle : int option;
      (** network ablation: [Some w] models finite per-node link bandwidth
          (arrivals at one node are serialized at [w] payload words per
          cycle); [None] (default) is the paper's contention-free model. *)
  (* --- finite buffering / flow control (§5.1 overflow machinery) --- *)
  flow_request_credits : int;
      (** per-(src,dst) send credits on the request virtual network; a
          sender out of credits parks (CPU) or spills (NP handler) until
          the receiver's NP finishes a message and returns the credit *)
  flow_response_credits : int;
      (** same, response vnet — kept separate so responses always retain
          enough credit to drain (§5.1's deadlock-avoidance priority) *)
  flow_spill_capacity : int;
      (** per-node cap on the user-level overflow (spill) buffer; an NP
          handler that would exceed it raises {!Tt_net.Overload.Overload}
          rather than buffer without bound *)
  np_queue_capacity : int;
      (** per-ring cap on the NP's work queues (finite buffering) *)
  fabric_capacity : int;
      (** cap on messages simultaneously in flight in the fabric *)
  (* --- simulator --- *)
  quantum : int;  (** thread run-ahead bound, cycles *)
  seed : int;
}

val default : t
(** Table 2 values; 256 KB CPU caches; seed 42. *)

val with_cache : t -> int -> t
(** Same parameters with a different CPU cache size (Figure 3 sweep). *)

val validate : t -> (unit, string) result
(** Sanity-check the record (positive sizes, power-of-two caches, …). *)

val domains_of_env : unit -> int
(** The [TT_DOMAINS] worker-domain count for the parallel harness sweeps
    and the {!Tt_sim.Domains} engine: [0] (default, or unset/empty) means
    sequential, [n >= 1] requests [n] worker domains.  Raises
    [Invalid_argument] on a malformed value.  A simulator knob like
    [TT_EVQ]/[TT_FLOW], deliberately not a field of {!t}: it changes
    wall-clock behavior only, never simulated cycles or stats. *)
