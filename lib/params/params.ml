type t = {
  nodes : int;
  cpu_cache_bytes : int;
  cpu_cache_assoc : int;
  cpu_tlb_entries : int;
  tlb_miss : int;
  local_miss : int;
  local_writeback : int;
  upgrade : int;
  net_latency : int;
  barrier_latency : int;
  remote_miss_base : int;
  remote_miss_finish : int;
  repl_shared : int;
  repl_exclusive : int;
  remote_inval : int;
  dir_op : int;
  dir_block_recv : int;
  dir_per_msg : int;
  dir_block_send : int;
  np_tlb_entries : int;
  np_tlb_miss : int;
  np_dcache_bytes : int;
  np_dcache_assoc : int;
  np_dcache_miss : int;
  fault_detect : int;
  stache_max_pages : int option;
  dir_limited_pointers : int option;
  link_words_per_cycle : int option;
  flow_request_credits : int;
  flow_response_credits : int;
  flow_spill_capacity : int;
  np_queue_capacity : int;
  fabric_capacity : int;
  quantum : int;
  seed : int;
}

let default =
  {
    nodes = 32;
    cpu_cache_bytes = 256 * 1024;
    cpu_cache_assoc = 4;
    cpu_tlb_entries = 64;
    tlb_miss = 25;
    local_miss = 29;
    local_writeback = 0;
    upgrade = 5;
    net_latency = 11;
    barrier_latency = 11;
    remote_miss_base = 23;
    remote_miss_finish = 34;
    repl_shared = 5;
    repl_exclusive = 16;
    remote_inval = 8;
    dir_op = 16;
    dir_block_recv = 11;
    dir_per_msg = 5;
    dir_block_send = 11;
    np_tlb_entries = 64;
    np_tlb_miss = 25;
    np_dcache_bytes = 16 * 1024;
    np_dcache_assoc = 2;
    np_dcache_miss = 29;
    fault_detect = 10;
    stache_max_pages = None;
    dir_limited_pointers = None;
    link_words_per_cycle = None;
    (* ample by default: the reliable transport's send window is 512 per
       (src,dst) pair, so 4096 credits per (src,dst,vnet) can never be
       exhausted and the pinned cycle rows stay bit-identical to TT_FLOW=0 *)
    flow_request_credits = 4096;
    flow_response_credits = 4096;
    flow_spill_capacity = 1 lsl 16;
    np_queue_capacity = 1 lsl 16;
    fabric_capacity = 1 lsl 20;
    quantum = 200;
    seed = 42;
  }

let with_cache t size = { t with cpu_cache_bytes = size }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.nodes <= 0 then err "nodes must be positive"
  else if not (is_power_of_two t.cpu_cache_bytes) then
    err "cpu_cache_bytes must be a power of two"
  else if t.cpu_cache_bytes mod (t.cpu_cache_assoc * 32) <> 0 then
    err "cpu cache size must be a multiple of assoc*32"
  else if t.net_latency <= 0 then err "net_latency must be positive"
  else if t.quantum <= 0 then err "quantum must be positive"
  else if t.flow_request_credits <= 0 then
    err "flow_request_credits must be positive"
  else if t.flow_response_credits <= 0 then
    err "flow_response_credits must be positive"
  else if t.flow_spill_capacity < 0 then
    err "flow_spill_capacity must be non-negative"
  else if t.np_queue_capacity <= 0 then err "np_queue_capacity must be positive"
  else if t.fabric_capacity <= 0 then err "fabric_capacity must be positive"
  else Ok ()

(* TT_DOMAINS follows the TT_EVQ / TT_FASTPATH / TT_FLOW kill-switch
   pattern: a simulator-implementation knob read from the environment, not
   a machine parameter — it must never appear in [t], where it could leak
   into labels or pinned outputs. *)
let domains_of_env () =
  match Sys.getenv_opt "TT_DOMAINS" with
  | None | Some "" -> 0
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 0 -> n
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf
               "TT_DOMAINS=%s: expected a non-negative domain count" s))
