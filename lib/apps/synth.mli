(** Synthetic shared-memory workload generator.

    The five ported benchmarks fix their sharing patterns; this generator
    exposes the pattern as parameters so the design space between the
    machines can be explored directly (the [tt sweep] command drives it).
    Data is partitioned across processors, each partition homed locally;
    accesses hit the local partition or a uniformly random remote one.

    Three sharing disciplines keep results deterministic and verifiable:
    - [Private_writes]: processors write only their own partition (remote
      traffic is read-only sharing, like stencil ghost cells);
    - [Locked_counters]: remote writes are lock-protected increments
      (migratory sharing, like MP3D's space cells);
    - [Producer_consumer]: per epoch, every processor rewrites its own
      partition, synchronizes, then reads its neighbour's whole partition
      and checks each value in place (phase-structured channel traffic,
      like EM3D's value arrays — the staleness detector for the
      update-family protocols). *)

type sharing = Private_writes | Locked_counters | Producer_consumer

type config = {
  words_per_proc : int;
  ops_per_proc : int;  (** ignored under [Producer_consumer] *)
  write_pct : int;  (** share of operations that write, 0..100 *)
  remote_pct : int;  (** share of operations aimed at a remote partition *)
  run_length : int;  (** consecutive addresses per placement choice (spatial
                         locality / block reuse) *)
  think : int;  (** compute cycles between operations *)
  sharing : sharing;
  seed : int;
  epochs : int;  (** produce/consume rounds under [Producer_consumer] *)
}

val default : config
(** 512 words/proc, 2000 ops/proc, 30 % writes, 20 % remote, run length 4,
    4 think cycles, private writes, 4 epochs. *)

type instance = { body : Env.t -> unit; verify : Env.t -> unit }

val make : config -> nprocs:int -> instance
