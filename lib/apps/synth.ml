module Prng = Tt_util.Prng

type sharing = Private_writes | Locked_counters | Producer_consumer

type config = {
  words_per_proc : int;
  ops_per_proc : int;
  write_pct : int;
  remote_pct : int;
  run_length : int;
  think : int;
  sharing : sharing;
  seed : int;
  epochs : int;
}

let default =
  { words_per_proc = 512; ops_per_proc = 2000; write_pct = 30;
    remote_pct = 20; run_length = 4; think = 4; sharing = Private_writes;
    seed = 19; epochs = 4 }

type instance = { body : Env.t -> unit; verify : Env.t -> unit }

type op = { word : int (* global index *); is_write : bool }

(* The deterministic per-processor operation stream: both the SPMD body and
   the verifier replay exactly this. *)
let ops_for cfg ~nprocs ~proc =
  let prng = Prng.create ~seed:((cfg.seed * 131) + proc) in
  let partition = ref proc and base = ref 0 in
  Array.init cfg.ops_per_proc (fun i ->
      if i mod cfg.run_length = 0 then begin
        (* new placement: local, or a uniformly random remote partition *)
        (partition :=
           if nprocs > 1 && Prng.int prng 100 < cfg.remote_pct then begin
             let q = Prng.int prng (nprocs - 1) in
             if q >= proc then q + 1 else q
           end
           else proc);
        base := Prng.int prng cfg.words_per_proc
      end;
      let is_write = Prng.int prng 100 < cfg.write_pct in
      let offset = (!base + (i mod cfg.run_length)) mod cfg.words_per_proc in
      match cfg.sharing, is_write with
      | Private_writes, true ->
          (* writes stay in the local partition (owners-compute) *)
          { word = (proc * cfg.words_per_proc) + offset; is_write = true }
      | (Private_writes | Locked_counters | Producer_consumer), _ ->
          { word = (!partition * cfg.words_per_proc) + offset; is_write })

let encode_write ~proc ~op_index =
  float_of_int ((proc * 1_000_000) + op_index + 1)

let encode_epoch ~owner ~epoch ~offset =
  float_of_int ((owner * 1_000_000) + (epoch * 1_000) + offset)

(* Producer-consumer discipline: per epoch, every processor rewrites its own
   partition (home stores), synchronizes, then reads its left neighbour's
   whole partition and checks every value in place — the body itself detects
   staleness, which exercises the update-family protocols' release flushes
   end to end. *)
let make_pc cfg ~nprocs =
  let total_words = nprocs * cfg.words_per_proc in
  let bases = Array.make nprocs 0 in
  let addr w =
    bases.(w / cfg.words_per_proc) + (w mod cfg.words_per_proc * Env.word)
  in
  let body (env : Env.t) =
    let proc = env.Env.proc in
    if proc = 0 then
      for q = 0 to nprocs - 1 do
        bases.(q) <- env.Env.alloc ~home:q (cfg.words_per_proc * Env.word)
      done;
    env.Env.barrier ();
    let src = (proc + 1) mod nprocs in
    for epoch = 1 to cfg.epochs do
      (* produce: rewrite the local partition *)
      for offset = 0 to cfg.words_per_proc - 1 do
        env.Env.work cfg.think;
        env.Env.write
          (addr ((proc * cfg.words_per_proc) + offset))
          (encode_epoch ~owner:proc ~epoch ~offset)
      done;
      env.Env.barrier ();
      (* consume: read the neighbour's whole partition, checking in place *)
      for offset = 0 to cfg.words_per_proc - 1 do
        env.Env.work cfg.think;
        let got = env.Env.read (addr ((src * cfg.words_per_proc) + offset)) in
        let want = encode_epoch ~owner:src ~epoch ~offset in
        if got <> want then
          failwith
            (Printf.sprintf
               "synth-pc proc %d epoch %d: word %d of proc %d = %g, expected %g"
               proc epoch offset src got want)
      done;
      env.Env.barrier ()
    done
  in
  let verify (env : Env.t) =
    if env.Env.proc = 0 then
      for w = 0 to total_words - 1 do
        let owner = w / cfg.words_per_proc and offset = w mod cfg.words_per_proc in
        let got = env.Env.read (addr w) in
        let want = encode_epoch ~owner ~epoch:cfg.epochs ~offset in
        if got <> want then
          failwith
            (Printf.sprintf "synth-pc word %d = %g, expected %g" w got want)
      done
  in
  { body; verify }

let rec make cfg ~nprocs =
  if cfg.run_length <= 0 || cfg.words_per_proc <= 0 || cfg.epochs <= 0 then
    invalid_arg "Synth.make: bad configuration";
  if cfg.sharing = Producer_consumer then make_pc cfg ~nprocs
  else make_streaming cfg ~nprocs

and make_streaming cfg ~nprocs =
  let streams = Array.init nprocs (fun proc -> ops_for cfg ~nprocs ~proc) in
  let total_words = nprocs * cfg.words_per_proc in
  let bases = Array.make nprocs 0 in
  let addr w =
    bases.(w / cfg.words_per_proc) + (w mod cfg.words_per_proc * Env.word)
  in
  let body (env : Env.t) =
    let proc = env.Env.proc in
    if proc = 0 then
      (* one partition per processor, homed there *)
      for q = 0 to nprocs - 1 do
        bases.(q) <- env.Env.alloc ~home:q (cfg.words_per_proc * Env.word)
      done;
    env.Env.barrier ();
    (* owners zero their partitions *)
    for w = proc * cfg.words_per_proc to ((proc + 1) * cfg.words_per_proc) - 1
    do
      env.Env.write (addr w) 0.0
    done;
    env.Env.barrier ();
    Array.iteri
      (fun i { word; is_write } ->
        env.Env.work cfg.think;
        match cfg.sharing, is_write with
        | Private_writes, true ->
            env.Env.write (addr word) (encode_write ~proc ~op_index:i)
        | Private_writes, false -> ignore (env.Env.read (addr word))
        | Locked_counters, true ->
            env.Env.lock word;
            env.Env.write (addr word) (env.Env.read (addr word) +. 1.0);
            env.Env.unlock word
        | Locked_counters, false -> ignore (env.Env.read (addr word))
        | Producer_consumer, _ -> assert false (* handled by make_pc *))
      streams.(proc);
    env.Env.barrier ()
  in
  let verify (env : Env.t) =
    if env.Env.proc = 0 then begin
      let expect = Array.make total_words 0.0 in
      Array.iteri
        (fun proc stream ->
          Array.iteri
            (fun i { word; is_write } ->
              if is_write then
                match cfg.sharing with
                | Private_writes ->
                    expect.(word) <- encode_write ~proc ~op_index:i
                | Locked_counters -> expect.(word) <- expect.(word) +. 1.0
                | Producer_consumer -> assert false)
            stream)
        streams;
      for w = 0 to total_words - 1 do
        let got = env.Env.read (addr w) in
        if got <> expect.(w) then
          failwith
            (Printf.sprintf "synth word %d = %g, expected %g" w got expect.(w))
      done
    end
  in
  { body; verify }
