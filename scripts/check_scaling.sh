#!/bin/sh
# Event-queue A/B and scaling gate.
#
# 1. Runs the full test suite under both event-queue implementations
#    (TT_EVQ=heap and TT_EVQ=cal) so the pinned simulated-cycle
#    regression rows, torture replays, and the heap/calendar equivalence
#    property in test_sim.ml are checked both ways.  The two queues must
#    drain in the exact same (time, salt, seq) total order: any
#    divergence fails a pinned test.
# 2. Runs a fast 64-node smoke sweep of two Fig. 3 apps under both
#    implementations and diffs the simulated-cycle tables byte for byte
#    (host-CPU lines excluded — wall-clock is the only thing allowed to
#    differ).
set -eu
cd "$(dirname "$0")/.."

echo "== full suite, TT_EVQ=heap =="
TT_EVQ=heap dune runtest --force

echo "== full suite, TT_EVQ=cal =="
TT_EVQ=cal dune runtest --force

dune build bin/tt.exe
TT=_build/default/bin/tt.exe

heap_out=$(mktemp /tmp/tt-scale-heap.XXXXXX)
cal_out=$(mktemp /tmp/tt-scale-cal.XXXXXX)
trap 'rm -f "$heap_out" "$cal_out"' EXIT

echo "== 64-node smoke sweep, TT_EVQ=heap =="
TT_EVQ=heap "$TT" scale --apps em3d,ocean -n 64 --scale 0.1 \
  | grep -v "host CPU" >"$heap_out"
cat "$heap_out"

echo "== 64-node smoke sweep, TT_EVQ=cal =="
TT_EVQ=cal "$TT" scale --apps em3d,ocean -n 64 --scale 0.1 \
  | grep -v "host CPU" >"$cal_out"

diff -u "$heap_out" "$cal_out"

echo "event-queue parity: suites green both ways, sweep tables identical"
