#!/bin/sh
# Timing-neutrality gate for the message/buffer pools.
#
# Runs the full test suite twice — pools enabled, then with
# TT_POOL_DISABLE=1 (every send allocates a fresh record) — so the pinned
# simulated-cycle regression rows in test_regression.ml are checked under
# both configurations.  Any divergence fails the corresponding pinned
# test: pooling recycles records, it must never move an event.
#
# The bench harness enforces the same invariant in-process
# (pool_timing_parity in bench/main.ml) and records the pool ablation as
# ablation_message_pool in BENCH_RESULTS.json.
set -eu
cd "$(dirname "$0")/.."

echo "== pools enabled =="
dune runtest --force

echo "== pools disabled (TT_POOL_DISABLE=1) =="
TT_POOL_DISABLE=1 dune runtest --force

echo "pool timing parity: both runs green (pinned cycle rows identical)"
