#!/bin/sh
# Torture-harness gate.
#
# 1. The default litmus smoke grid — every shape x {stache, dirnnb} x
#    {perfect, drop 5%} x 8 seeds, schedules perturbed — must report zero
#    SC violations, with the message/buffer pools enabled and disabled
#    (the same timing-neutrality axis as check_pool_timing.sh).
# 2. The guarded sabotage knob (TT_SABOTAGE=1 breaks Stache's
#    invalidation handler) must make the same grid fail, and the harness
#    must shrink the first failure to a runnable reproducer artifact.
# 3. Replaying that artifact must reproduce the recorded violation kind
#    deterministically (exit 0), proving the whole record/shrink/replay
#    loop end to end.
set -eu
cd "$(dirname "$0")/.."

dune build bin/tt.exe
TT=_build/default/bin/tt.exe

echo "== torture smoke grid (pools enabled) =="
"$TT" torture --smoke

echo "== torture smoke grid (pools disabled, TT_POOL_DISABLE=1) =="
TT_POOL_DISABLE=1 "$TT" torture --smoke

repro=$(mktemp /tmp/tt-torture-repro.XXXXXX)
trap 'rm -f "$repro"' EXIT

echo "== sabotaged grid must be caught and shrunk =="
if TT_SABOTAGE=1 "$TT" torture --smoke --out "$repro"; then
  echo "FAIL: sabotaged protocol passed the torture grid" >&2
  exit 1
fi
if [ ! -s "$repro" ]; then
  echo "FAIL: no reproducer artifact written" >&2
  exit 1
fi

echo "== shrunk artifact must replay to the same violation =="
"$TT" torture --replay "$repro"

echo "torture gate: clean grids pass, sabotage is caught, shrunk, and replays"
