#!/bin/sh
# Run every gate in sequence: the per-subsystem A/B checks (each runs the
# full test suite under its own kill-switch both ways) plus the
# domains-parallel parity gate.  Any failure aborts the chain.
set -eu
cd "$(dirname "$0")"

for gate in check_fastpath.sh check_flowcontrol.sh check_pool_timing.sh \
  check_scaling.sh check_torture.sh check_parallel.sh check_recovery.sh \
  check_protocols.sh; do
  echo ""
  echo "==================== $gate ===================="
  sh "$gate"
done

echo ""
echo "all gates green"
