#!/bin/sh
# Domains-parallel engine gate.
#
# 1. Runs the full test suite under TT_DOMAINS=0 and TT_DOMAINS=4 so the
#    pinned cycle rows, torture replays and PHOLD determinism properties
#    hold with the parallel harness both off and on.
# 2. Diffs deterministic CLI outputs byte for byte across TT_DOMAINS
#    values: the scale sweep table, a fault-sweep table, and the tt pdes
#    per-partition event-log hashes (the Domains determinism witness).
#    Only wall-clock may differ; the parallel note goes to stderr.
# 3. On hosts with >= 4 cores, additionally requires the parallel scale
#    sweep to beat the sequential one by TT_CHECK_SPEEDUP_MIN (default
#    1.5x; the ISSUE target of 2x needs 4 idle cores).  Skipped on
#    smaller hosts — determinism is always asserted, speedup only where
#    the hardware can show it.
set -eu
cd "$(dirname "$0")/.."

echo "== full suite, TT_DOMAINS=0 =="
TT_DOMAINS=0 dune runtest --force

echo "== full suite, TT_DOMAINS=4 =="
TT_DOMAINS=4 dune runtest --force

dune build bin/tt.exe
TT=_build/default/bin/tt.exe

seq_out=$(mktemp /tmp/tt-par-seq.XXXXXX)
par_out=$(mktemp /tmp/tt-par-par.XXXXXX)
trap 'rm -f "$seq_out" "$par_out"' EXIT

echo "== scale sweep, TT_DOMAINS=0 vs TT_DOMAINS=4 =="
t0=$(date +%s)
TT_DOMAINS=0 "$TT" scale --apps em3d,ocean -n 64,128 --scale 0.1 \
  | grep -v "host CPU" >"$seq_out"
t1=$(date +%s)
TT_DOMAINS=4 "$TT" scale --apps em3d,ocean -n 64,128 --scale 0.1 \
  2>/dev/null | grep -v "host CPU" >"$par_out"
t2=$(date +%s)
cat "$seq_out"
diff -u "$seq_out" "$par_out"
seq_s=$((t1 - t0))
par_s=$((t2 - t1))
echo "(sequential ${seq_s}s wall, parallel ${par_s}s wall)"

echo "== fault sweep, TT_DOMAINS=0 vs TT_DOMAINS=4 =="
TT_DOMAINS=0 "$TT" faults --apps em3d,mp3d --drops 5 --seeds 1 -n 4 \
  --scale 0.1 >"$seq_out"
TT_DOMAINS=4 "$TT" faults --apps em3d,mp3d --drops 5 --seeds 1 -n 4 \
  --scale 0.1 2>/dev/null >"$par_out"
diff -u "$seq_out" "$par_out"

echo "== pdes event-log hashes, TT_DOMAINS=1 vs TT_DOMAINS=4 =="
"$TT" pdes -n 64 --partitions 4 --horizon 50000 --domains 1 >"$seq_out"
"$TT" pdes -n 64 --partitions 4 --horizon 50000 --domains 4 2>/dev/null \
  >"$par_out"
cat "$seq_out"
diff -u "$seq_out" "$par_out"

ncores=$( (nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null) || echo 1)
min=${TT_CHECK_SPEEDUP_MIN:-1.5}
if [ "$ncores" -ge 4 ]; then
  echo "== speedup gate ($ncores cores, require >= ${min}x) =="
  ok=$(awk -v s="$seq_s" -v p="$par_s" -v m="$min" \
    'BEGIN { print (p > 0 && s / p >= m) ? 1 : 0 }')
  if [ "$ok" != 1 ]; then
    echo "FAIL: parallel sweep took ${par_s}s vs sequential ${seq_s}s" \
      "(need ${min}x)"
    exit 1
  fi
  echo "speedup OK: ${seq_s}s -> ${par_s}s"
else
  echo "(speedup gate skipped: only $ncores core(s); determinism asserted)"
fi

echo "parallel parity: suites green both ways, tables and hashes identical"
