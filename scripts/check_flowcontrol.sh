#!/bin/sh
# Equivalence gate for finite buffering / credit-based flow control.
#
# Runs the full build + test suite twice — flow control enabled (default),
# then with TT_FLOW=0 (sends go straight to the reliable transport with no
# capacity checks) — so the pinned simulated-cycle regression rows in
# test_regression.ml, the flow suite (test_flow.ml), and the torture
# replays are all checked under both configurations.  With the default
# ample credits (larger than the transport's send window can ever use) the
# credit layer is pure integer bookkeeping: any cycle divergence fails a
# pinned row or an equivalence property.
#
# The bench harness enforces the same invariant in-process
# (flowcontrol_timing_parity in bench/main.ml).
set -eu
cd "$(dirname "$0")/.."

echo "== flow control enabled =="
dune build
dune runtest --force

echo "== flow control disabled (TT_FLOW=0) =="
TT_FLOW=0 dune runtest --force

echo "flowcontrol parity: both runs green (pinned cycle rows identical)"
