#!/bin/sh
# Equivalence + determinism gate for the protocol zoo and the adaptive
# per-page switcher.
#
# 1. Runs the full build + test suite twice — adaptive switching enabled
#    (default), then with TT_ADAPT=0 (every page stays on the default
#    invalidate protocol) — so the pinned simulated-cycle regression rows
#    in test_regression.ml, the zoo/adaptive suite (test_proto.ml), and
#    the torture replays are all checked under both configurations.
#    Tests that exercise switching force TT_ADAPT=1 around their own
#    bodies, so the kill switch may never break the suite.
# 2. Diffs a compact shootout grid (tt proto) between the sequential
#    driver and 4 worker domains: the rendered table and the JSON cells
#    must be byte-identical (same guarantee as the scaling sweep).
#
# The bench harness enforces the complementary in-process invariant
# (adaptive_parity in bench/main.ml: a TT_ADAPT=0 run on the adaptive
# machine costs bit-identical cycles to the plain zoo machine) and records
# the zoo ablations as ablation_protocol_{migratory,update} in
# BENCH_RESULTS.json.
set -eu
cd "$(dirname "$0")/.."

echo "== adaptive switching enabled =="
dune build
dune runtest --force

echo "== adaptive switching disabled (TT_ADAPT=0) =="
TT_ADAPT=0 dune runtest --force

echo "== shootout determinism across worker domains =="
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
grid="--apps synthmig,synthpc --protos stache,migratory,widerep,adaptive -n 8"
for d in 1 4; do
  TT_BENCH_JSON="$tmpdir/cells-$d.json" \
    dune exec bin/tt.exe -- proto $grid --domains "$d" \
    | grep -v 'host CPU\|parallel:\|wrote shootout cells' > "$tmpdir/table-$d.txt"
done
diff -u "$tmpdir/table-1.txt" "$tmpdir/table-4.txt"
diff -u "$tmpdir/cells-1.json" "$tmpdir/cells-4.json"

echo "protocol parity: both suites green, shootout identical on 1 and 4 domains"
