#!/bin/sh
# Equivalence and correctness gate for crash-stop recovery.
#
# Three checks:
#
# 1. The full build + test suite runs twice — recovery support enabled
#    (default), then with TT_RECOVERY=0 (crash schedules ignored at
#    Faults.create, so the crash-stop failure model might as well not
#    exist) — so the pinned simulated-cycle regression rows in
#    test_regression.ml and every other suite are checked under both
#    configurations.  Crash injection consumes no main-stream PRNG draws
#    and no cycles when nobody crashes: any divergence fails a pinned row.
#
# 2. The recover grid itself must be deterministic: two sweeps of the
#    same seed must print byte-identical tables.
#
# 3. Under TT_RECOVERY=0 the recover command must report the kill switch
#    rather than silently sweeping nothing.
#
# The bench harness enforces the timing half in-process
# (recovery_timing_parity in bench/main.ml).
set -eu
cd "$(dirname "$0")/.."

echo "== recovery enabled =="
dune build
dune runtest --force

echo "== recovery disabled (TT_RECOVERY=0) =="
TT_RECOVERY=0 dune runtest --force

echo "== recover grid determinism =="
out1=$(dune exec bin/tt.exe -- recover --apps ocean --victims 3)
out2=$(dune exec bin/tt.exe -- recover --apps ocean --victims 3)
if [ "$out1" != "$out2" ]; then
  echo "FATAL: two identical recover sweeps printed different tables" >&2
  exit 1
fi

echo "== recover respects the kill switch =="
TT_RECOVERY=0 dune exec bin/tt.exe -- recover --apps ocean --victims 3 \
  | grep -q "TT_RECOVERY=0" || {
  echo "FATAL: recover under TT_RECOVERY=0 did not report the kill switch" >&2
  exit 1
}

echo "recovery parity: both suite runs green, grid deterministic"
