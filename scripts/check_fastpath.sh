#!/bin/sh
# Equivalence gate for the suspension-free fast path.
#
# Runs the full build + test suite twice — fast path enabled (default),
# then with TT_FASTPATH=0 (every blocking point takes the full effect
# suspend/resume) — so the pinned simulated-cycle regression rows in
# test_regression.ml, the fastpath equivalence suite (test_fastpath.ml),
# and the torture replays are all checked under both configurations.
# Eliding a fiber switch must never move an event: any divergence fails a
# pinned row or an equivalence property.
#
# The bench harness enforces the same invariant in-process
# (fastpath_timing_parity in bench/main.ml) and records the ablation as
# ablation_effect_suspend_resume_{fast,slow} in BENCH_RESULTS.json.
set -eu
cd "$(dirname "$0")/.."

echo "== fast path enabled =="
dune build
dune runtest --force

echo "== fast path disabled (TT_FASTPATH=0) =="
TT_FASTPATH=0 dune runtest --force

echo "fastpath parity: both runs green (pinned cycle rows identical)"
